//! The multi-thread out-of-order pipeline.
//!
//! One [`Pipeline`] simulates up to three hardware thread contexts:
//!
//! * the **main thread** (MT), trace-driven from the functional emulator —
//!   branch outcomes, values and addresses come from the correct-path
//!   [`ExecRecord`] stream; the timing model decides *when* things happen;
//! * up to two **side threads** (HT_A/HT_B), supplied and steered by a
//!   [`PreExecEngine`], executed with *real values* against the retire-time
//!   memory image plus the side store cache.
//!
//! Frontend width, ROB, LQ, SQ and PRF are partitioned per Table I while
//! side threads run; the issue queue and execution lanes are flexibly
//! shared. Mispredicted MT branches stall fetch until they resolve (no
//! wrong-path execution; documented in DESIGN.md); load-store ordering
//! violations squash and replay.
//!
//! # Module layout
//!
//! The pipeline is decomposed per stage, one file per stage, all
//! operating on the shared [`SimContext`] (every piece of simulator state
//! except the pre-execution engine):
//!
//! * [`fetch`] — MT trace fetch, side-thread fetch, branch prediction;
//! * [`rename_dispatch`] — rename, resource allocation, IQ insertion;
//! * [`issue_execute`] — wakeup/select, MT and side execution;
//! * [`lsq`] — store-to-load forwarding, ordering-violation detection,
//!   doubleword extract/merge;
//! * [`retire`] — in-order (and loose side) retirement, stat accounting;
//! * [`squash`] — squash machinery plus pre-execution trigger/terminate.
//!
//! Stage methods that never touch the engine live on `SimContext`; the
//! rest live on `Pipeline<E>` and borrow `ctx` and `engine` disjointly.
//! `SimContext` (and therefore every run input: [`crate::sim::RunConfig`],
//! a prepared [`Cpu`]) is `Send`, so whole simulations can move to worker
//! threads — the experiment runner in `phelps-bench` relies on this.

mod fetch;
mod issue_execute;
mod lsq;
mod rename_dispatch;
mod retire;
mod slab;
mod squash;

use crate::classify::MispredictBreakdown;
use crate::sim::types::{Mode, PreExecEngine, SideInst, HT_A, HT_B, MT};
use crate::storecache::StoreCache;
use phelps_isa::{Cpu, EmuError, ExecRecord, Inst, Memory, NUM_REGS};
use phelps_telemetry as tlm;
use phelps_uarch::bpred::{DirectionPredictor, HistoryCheckpoint, TageScL};
use phelps_uarch::config::{ActiveThreads, CoreConfig, PartitionPlan};
use phelps_uarch::mem::{MemoryHierarchy, Uncore};
use phelps_uarch::stats::SimStats;
use std::collections::{HashMap, VecDeque};

use crate::sim::types::EngineCkpt;
use slab::{InstMeta, InstSlab, Lane, NO_DEP};

fn lane_of(inst: &Inst) -> Lane {
    match inst {
        Inst::Load { .. } | Inst::Store { .. } => Lane::Mem,
        Inst::Alu { op, .. } | Inst::AluImm { op, .. } if op.is_complex() => Lane::Complex,
        _ => Lane::Alu,
    }
}

fn exec_latency(inst: &Inst) -> u32 {
    match inst {
        Inst::Alu { op, .. } | Inst::AluImm { op, .. } => op.latency(),
        _ => 1,
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Stage {
    /// In the frontend pipe; dispatches at the stored cycle.
    Frontend,
    /// Waiting in the issue queue.
    InIq,
    /// Executing; completes at `done`.
    Exec { done: u64 },
    /// Result available.
    Done,
}

/// Where a fetched MT prediction came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PredFrom {
    Default,
    Queue,
    Oracle,
    None,
}

/// Cold per-instruction payload, stored in the slab's slot column. The
/// per-cycle scalar state (stage, lane, dep slots, ready-dep count,
/// flags) lives in the slab's hot columns — see [`slab`].
#[derive(Clone, Debug)]
struct DynInst {
    seq: u64,
    tid: usize,
    pc: u64,
    inst: Inst,
    /// MT: the trace record. Side: stub filled at execute.
    rec: ExecRecord,
    /// MT conditional branches: prediction consumed at fetch.
    predicted: Option<bool>,
    /// What the default predictor said (computed even when a queue
    /// supplied the prediction — the DBT measures the core predictor's
    /// delinquency regardless of the consumed source, paper §V-B).
    default_pred: Option<bool>,
    pred_from: PredFrom,
    mispredicted: bool,
    /// Checkpoints for recovery (MT conditional branches).
    bp_ckpt: Option<HistoryCheckpoint>,
    engine_ckpt: Option<EngineCkpt>,
    /// Side-thread payload.
    side: Option<SideInst>,
    /// Execute-time results (side threads; MT copies from rec).
    result: u64,
    taken: bool,
    mem_addr: u64,
    /// Predicate evaluation result.
    enabled: bool,
    /// Frontend-pipe exit cycle while in [`Stage::Frontend`]; cleared at
    /// dispatch.
    mem_done: u64,
}

impl DynInst {
    fn is_cond_branch(&self) -> bool {
        self.inst.is_cond_branch()
    }
}

/// The correct-path instruction source for the main thread, with a replay
/// buffer for squash recovery.
#[derive(Debug)]
struct TraceSource {
    cpu: Cpu,
    replay: VecDeque<ExecRecord>,
    exhausted: bool,
}

impl TraceSource {
    fn next(&mut self) -> Option<ExecRecord> {
        if let Some(r) = self.replay.pop_front() {
            return Some(r);
        }
        if self.exhausted || self.cpu.is_halted() {
            return None;
        }
        match self.cpu.step() {
            Ok(rec) => Some(rec),
            Err(EmuError::Halted) => None,
            Err(e) => panic!("guest program fault: {e}"),
        }
    }

    fn push_replay_front(&mut self, recs: impl DoubleEndedIterator<Item = ExecRecord>) {
        for r in recs.rev() {
            self.replay.push_front(r);
        }
    }
}

#[derive(Clone, Debug)]
struct ThreadCtx {
    /// In-flight seqs in program order (frontend + ROB).
    rob: VecDeque<u64>,
    /// In-flight load seqs, program order (the loads of `rob`). Keeps
    /// ordering-violation search off the full ROB scan.
    loads: VecDeque<u64>,
    /// In-flight store seqs, program order (the stores of `rob`).
    /// Store-to-load forwarding and the store-set check walk this
    /// SQ-bounded list instead of the whole ROB.
    stores: VecDeque<u64>,
    /// Seqs in the frontend pipe (prefix of `rob`).
    frontend: usize,
    /// Rename map: logical reg -> producing seq.
    rmt: [Option<u64>; NUM_REGS],
    /// Predicate rename: logical pred reg -> producing seq.
    pred_rmt: [Option<u64>; 17],
    /// Committed predicate values (enabled, taken), written at predicate
    /// producer retire; read by consumers whose producer already retired.
    pred_vals: [(bool, bool); 17],
    /// Committed (retire-time) register values. MT: the timing-architectural
    /// file used for live-in capture; side threads: their value state.
    regs: [u64; NUM_REGS],
    // Partition limits.
    width: u32,
    rob_cap: u32,
    lq_cap: u32,
    sq_cap: u32,
    prf_cap: u32,
    // Usage.
    lq_used: u32,
    sq_used: u32,
    prf_used: u32,
    /// MT fetch blocked until this cycle (mispredict resolution, trigger).
    fetch_stall_until: u64,
    /// MT fetch blocked until this cycle by an in-flight L1I miss. Kept
    /// apart from `fetch_stall_until` (which squashes reset) because the
    /// instruction fill stays in flight across a squash.
    ifetch_stall_until: u64,
    /// Seq of the unresolved mispredicted branch blocking fetch.
    blocking_branch: Option<u64>,
    /// MT fetch blocked until the flagged live-in move retires.
    waiting_mt_release: bool,
    active: bool,
}

impl ThreadCtx {
    fn new() -> ThreadCtx {
        ThreadCtx {
            rob: VecDeque::new(),
            loads: VecDeque::new(),
            stores: VecDeque::new(),
            frontend: 0,
            rmt: [None; NUM_REGS],
            pred_rmt: [None; 17],
            pred_vals: [(true, false); 17],
            regs: [0; NUM_REGS],
            width: 0,
            rob_cap: 0,
            lq_cap: 0,
            sq_cap: 0,
            prf_cap: 0,
            lq_used: 0,
            sq_used: 0,
            prf_used: 0,
            fetch_stall_until: 0,
            ifetch_stall_until: 0,
            blocking_branch: None,
            waiting_mt_release: false,
            active: false,
        }
    }

    /// Records a fetched instruction in the load/store index lists.
    fn track_fetched(&mut self, seq: u64, meta: &InstMeta) {
        if meta.is_load() {
            self.loads.push_back(seq);
        }
        if meta.is_store() {
            self.stores.push_back(seq);
        }
    }

    /// Drops a removed instruction from the load/store index lists. The
    /// lists are sorted (program order), so off-head removal is a binary
    /// search; the common retire case pops the front.
    fn forget_tracked(&mut self, seq: u64, meta: &InstMeta) {
        fn drop_seq(q: &mut VecDeque<u64>, seq: u64) {
            if q.front() == Some(&seq) {
                q.pop_front();
            } else if let Ok(i) = q.binary_search(&seq) {
                q.remove(i);
            }
        }
        if meta.is_load() {
            drop_seq(&mut self.loads, seq);
        }
        if meta.is_store() {
            drop_seq(&mut self.stores, seq);
        }
    }

    /// Truncates the load/store index lists at a squash boundary
    /// (removes every seq >= `from`).
    fn truncate_tracked_from(&mut self, from: u64) {
        let cut = self.loads.partition_point(|&s| s < from);
        self.loads.truncate(cut);
        let cut = self.stores.partition_point(|&s| s < from);
        self.stores.truncate(cut);
    }
}

/// Simulation result bundle.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Counter bundle.
    pub stats: SimStats,
    /// Fig. 14 misprediction classification.
    pub breakdown: MispredictBreakdown,
    /// Harvested telemetry, when a [`phelps_telemetry`] registry was
    /// installed on this thread before the run (see `PHELPS_TRACE`).
    pub telemetry: Option<Box<tlm::Report>>,
    /// Every main-thread [`ExecRecord`] in retirement order, when
    /// [`Pipeline::record_retires`] was called before the run. `None`
    /// otherwise (the common case — experiment runs pay nothing for it).
    pub retire_log: Option<Vec<ExecRecord>>,
    /// Final timing-architectural state, captured together with the
    /// retire log for differential co-simulation (`phelps-verify`).
    pub final_state: Option<Box<FinalState>>,
}

impl SimResult {
    /// Folds a later shard's result into this one: stats and the
    /// misprediction breakdown sum, telemetry reports merge (splicing
    /// the epoch/event series, see `phelps_telemetry::Report::merge`),
    /// and a missing telemetry side adopts the present one.
    ///
    /// The retire log and final architectural state are positional
    /// artifacts of one contiguous run — a stitched run has neither, so
    /// both drop to `None`.
    pub fn merge(&mut self, other: &SimResult) {
        self.stats.merge(&other.stats);
        self.breakdown.merge(&other.breakdown);
        self.telemetry = match (self.telemetry.take(), other.telemetry.as_deref()) {
            (Some(mut a), Some(b)) => {
                a.merge(b);
                Some(a)
            }
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(Box::new(b.clone())),
            (None, None) => None,
        };
        self.retire_log = None;
        self.final_state = None;
    }
}

/// Architectural end-state of a run, for differential comparison against
/// the functional emulator. Captured only when retire logging is on.
#[derive(Clone, Debug)]
pub struct FinalState {
    /// The main thread's timing-architectural register file (updated at
    /// retire; registers never written by a retired instruction stay 0).
    pub mt_regs: [u64; NUM_REGS],
    /// The retire-time memory image. Seeded from the guest memory at
    /// construction and written only by retired main-thread stores, so a
    /// correct pipeline ends with exactly the emulator's final memory.
    pub mem: Memory,
}

/// Explicit per-thread resource quotas, overriding the Table I fractional
/// partitioning. Used by the Branch Runahead baseline, whose main thread
/// keeps the whole ROB and SQ (and, in the 12-wide configuration, full
/// baseline resources).
#[derive(Clone, Copy, Debug)]
pub struct ThreadQuota {
    /// Frontend (fetch/dispatch/retire) width.
    pub width: u32,
    /// In-flight instruction budget (ROB share or usage-counter budget).
    pub rob: u32,
    /// Load-queue share.
    pub lq: u32,
    /// Store-queue share.
    pub sq: u32,
    /// Physical-register share.
    pub prf: u32,
}

/// Everything the stages share: the whole simulator state *except* the
/// pre-execution engine. Stage methods that never consult the engine are
/// implemented directly on this type (see the module docs); methods on
/// [`Pipeline`] borrow `ctx` and `engine` as disjoint fields.
#[derive(Debug)]
struct SimContext {
    cfg: CoreConfig,
    mode_oracle: bool,
    partition_only: bool,
    trace: TraceSource,
    bpred: TageScL,
    hierarchy: MemoryHierarchy,
    /// Retire-time memory image: MT stores applied at retire; side loads
    /// read it (plus the store cache).
    timing_mem: Memory,
    store_cache: StoreCache,
    threads: Vec<ThreadCtx>,
    /// In-flight instruction table: seq-indexed slab with hot
    /// structure-of-arrays columns (see [`slab`]).
    insts: InstSlab,
    /// Shared issue queue: seqs, kept sorted ascending (oldest first) by
    /// binary-search insertion at dispatch, so issue selection walks it
    /// directly instead of cloning and sorting every cycle.
    iq: Vec<u64>,
    /// Reused scratch for the per-cycle issue walk: `issue` snapshots the
    /// IQ here so selection survives mid-walk IQ mutation (a side-thread
    /// squash triggered by an executing branch) without a fresh
    /// allocation every cycle.
    issue_scratch: Vec<u64>,
    /// Reused scratch for the completion sweep (seqs that turned Done
    /// this cycle, pending wakeup broadcast).
    completed_scratch: Vec<u64>,
    /// Reused scratch for loose side retirement.
    loose_scratch: Vec<u64>,
    next_seq: u64,
    cycle: u64,
    /// Engine-triggered state.
    preexec_active: bool,
    /// Cycle of the most recent trigger (telemetry: trigger-span hist).
    trigger_cycle: u64,
    /// Outstanding `mt_release` move.
    mt_release_pending: bool,
    max_mt_insts: u64,
    stats: SimStats,
    breakdown: MispredictBreakdown,
    thread_priority: usize,
    /// Explicit quota override: (main thread, side thread).
    quotas: Option<(ThreadQuota, ThreadQuota)>,
    /// Per-branch-PC queue accuracy: (consumed, wrong). Debug aid dumped
    /// under PHELPS_DBG at the end of a run.
    queue_acc: HashMap<u64, (u64, u64)>,
    /// Debug: (enabled, suppressed) side-store commits, and MT stores.
    dbg_stores: (u64, u64, u64),
    /// Load PCs that previously caused an ordering violation: they wait
    /// for older stores' addresses before issuing (a store-set-style
    /// memory-dependence predictor — without it, every loop-carried
    /// store→load pair would violate every iteration).
    violating_loads: std::collections::HashSet<u64>,
    /// Stop when the MT trace is fully retired.
    finished: bool,
    /// When `Some`, every retired MT record is appended (co-simulation
    /// oracle; see [`Pipeline::record_retires`]).
    retire_log: Option<Vec<ExecRecord>>,
    /// Highest MT seq retired so far (in-order retirement invariant).
    #[cfg(feature = "debug-invariants")]
    last_mt_retired_seq: u64,
}

/// The pipeline. Construct via [`Pipeline::new`], then [`Pipeline::run`].
#[derive(Debug)]
pub struct Pipeline<E: PreExecEngine> {
    ctx: SimContext,
    engine: Option<E>,
}

// Whole simulations must be movable to worker threads: the experiment
// runner in `phelps-bench` schedules `simulate` calls across a scoped
// thread pool. Keep this statically checked so a stray `Rc`/raw pointer
// in any simulator structure fails the build here, with a clear culprit,
// rather than at the runner's spawn site.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SimContext>();
    assert_send::<SimResult>();
    assert_send::<crate::sim::types::RunConfig>();
    assert_send::<Cpu>();
    assert_send::<SimStats>();
};

impl<E: PreExecEngine> Pipeline<E> {
    /// Creates a pipeline over a prepared guest CPU (program + initialized
    /// memory + entry registers).
    pub fn new(
        cpu: Cpu,
        cfg: CoreConfig,
        mode: &Mode,
        engine: Option<E>,
        max_mt_insts: u64,
    ) -> Pipeline<E> {
        let timing_mem = cpu.mem.clone();
        let mut threads = vec![ThreadCtx::new(), ThreadCtx::new(), ThreadCtx::new()];
        threads[MT].active = true;
        let hierarchy = MemoryHierarchy::new(&cfg);
        let partition_only = matches!(mode, Mode::PartitionOnly);
        let mut ctx = SimContext {
            mode_oracle: matches!(mode, Mode::PerfectBp),
            partition_only,
            trace: TraceSource {
                cpu,
                replay: VecDeque::new(),
                exhausted: false,
            },
            bpred: TageScL::large(),
            hierarchy,
            timing_mem,
            store_cache: StoreCache::paper_default(),
            threads,
            insts: InstSlab::new(),
            iq: Vec::new(),
            issue_scratch: Vec::new(),
            completed_scratch: Vec::new(),
            loose_scratch: Vec::new(),
            next_seq: 0,
            cycle: 0,
            preexec_active: false,
            trigger_cycle: 0,
            mt_release_pending: false,
            max_mt_insts,
            stats: SimStats::new(),
            breakdown: MispredictBreakdown::new(),
            thread_priority: 0,
            quotas: None,
            queue_acc: HashMap::new(),
            dbg_stores: (0, 0, 0),
            violating_loads: std::collections::HashSet::new(),
            finished: false,
            retire_log: None,
            #[cfg(feature = "debug-invariants")]
            last_mt_retired_seq: 0,
            cfg,
        };
        ctx.apply_partition(if partition_only {
            ActiveThreads::MainPartitioned
        } else {
            ActiveThreads::MainOnly
        });
        Pipeline { ctx, engine }
    }

    /// Immutable view of the statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.ctx.stats
    }

    /// Turns on retire logging: the run collects every retired main-thread
    /// [`ExecRecord`] plus the final timing-architectural state into
    /// [`SimResult::retire_log`] / [`SimResult::final_state`]. Used by the
    /// `phelps-verify` differential harness; call before [`Pipeline::run`].
    pub fn record_retires(&mut self) {
        self.ctx.retire_log = Some(Vec::new());
    }

    /// Functionally warms the microarchitectural state from a replayed
    /// instruction trace (checkpoint warmup, `phelps-ckpt`): conditional
    /// branches train the direction predictor, every instruction warms the
    /// L1I fetch path, and loads and stores touch the data hierarchy's tag
    /// arrays. No cycles pass and no statistics move — call before
    /// [`Pipeline::run`]. With an empty slice this is a no-op, so the
    /// unwarmed path is bit-for-bit unchanged.
    pub fn warm_microarch(&mut self, warm: &[ExecRecord]) {
        for rec in warm {
            self.ctx.hierarchy.warm_ifetch(rec.pc);
            if rec.inst.is_cond_branch() {
                self.ctx.bpred.warm(rec.pc, rec.taken);
            }
            if rec.inst.is_load() || rec.inst.is_store() {
                self.ctx.hierarchy.warm_access(rec.mem_addr);
            }
        }
    }

    /// Overrides the helper-thread store-cache geometry (sets of 2 ways;
    /// paper: 16). For the design-choice ablation harness; call before
    /// [`Pipeline::run`].
    pub fn set_store_cache_sets(&mut self, sets: usize) {
        self.ctx.store_cache = StoreCache::new(sets.next_power_of_two().max(1));
    }

    /// Overrides Table I partitioning with explicit quotas: the main
    /// thread always gets `mt`; the side thread gets `side` while
    /// pre-execution is active. Call before [`Pipeline::run`].
    pub fn set_quotas(&mut self, mt: ThreadQuota, side: ThreadQuota) {
        self.ctx.quotas = Some((mt, side));
        self.ctx.apply_partition(ActiveThreads::MainOnly);
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// Runs to completion (trace exhausted or `max_mt_insts` retired) and
    /// returns the result bundle.
    pub fn run(mut self) -> SimResult {
        let cycle_bound = self.cycle_bound();
        while !self.ctx.finished && self.ctx.cycle < cycle_bound {
            self.step_cycle();
        }
        self.finalize()
    }

    /// Hard cycle bound to catch livelocks in debugging scenarios.
    pub fn cycle_bound(&self) -> u64 {
        self.ctx.max_mt_insts.saturating_mul(64).max(1_000_000)
    }

    /// Whether the run has reached its end condition (trace exhausted or
    /// `max_mt_insts` retired).
    pub fn finished(&self) -> bool {
        self.ctx.finished
    }

    /// Tags this core's shared-tier traffic with `tenant` (co-run driver;
    /// solo runs keep the default 0).
    pub fn set_tenant(&mut self, tenant: usize) {
        self.ctx.hierarchy.set_tenant(tenant);
    }

    /// Advances one cycle against a communal shared tier: swaps `uncore`
    /// in for the step and back out after, so every co-running core's
    /// misses land in the same L2/L3/DRAM. The swap leaves this
    /// pipeline's owned uncore untouched while the step runs elsewhere —
    /// a solo run never calls this and is bit-identical to [`Pipeline::run`].
    pub fn step_shared(&mut self, uncore: &mut Uncore) {
        self.ctx.hierarchy.swap_uncore(uncore);
        self.step_cycle();
        self.ctx.hierarchy.swap_uncore(uncore);
    }

    /// Closes out a stepped run: flushes hierarchy counters into the stat
    /// bundle and assembles the [`SimResult`]. [`Pipeline::run`] ends
    /// here; a co-run driver calls it on each core after interleaved
    /// [`Pipeline::step_shared`] stepping.
    pub fn finalize(mut self) -> SimResult {
        assert!(
            self.ctx.finished,
            "simulation did not converge within {} cycles (deadlock?)",
            self.cycle_bound()
        );
        self.flush_mem_stats();
        if std::env::var("PHELPS_DBG").is_ok() {
            let mut rows: Vec<(u64, (u64, u64))> =
                self.ctx.queue_acc.iter().map(|(k, v)| (*k, *v)).collect();
            rows.sort_unstable();
            for (pc, (n, w)) in rows {
                eprintln!("[dbg] queue pc={pc:#x} consumed={n} wrong={w}");
            }
            eprintln!(
                "[dbg] stores: side enabled={} suppressed={} mt={}",
                self.ctx.dbg_stores.0, self.ctx.dbg_stores.1, self.ctx.dbg_stores.2
            );
        }
        self.ctx.stats.cycles = self.ctx.cycle;
        self.ctx.breakdown.retired = self.ctx.stats.mt_retired;
        let retire_log = self.ctx.retire_log.take();
        let final_state = retire_log.is_some().then(|| {
            Box::new(FinalState {
                mt_regs: self.ctx.threads[MT].regs,
                mem: std::mem::take(&mut self.ctx.timing_mem),
            })
        });
        SimResult {
            stats: self.ctx.stats,
            breakdown: self.ctx.breakdown,
            telemetry: tlm::harvest(),
            retire_log,
            final_state,
        }
    }

    fn step_cycle(&mut self) {
        self.ctx.cycle += 1;
        if tlm::enabled() {
            tlm::tick(self.ctx.cycle);
            let t = &self.ctx.threads[MT];
            tlm::gauge(tlm::Gauge::RobOccupancy, t.rob.len() as u64);
            tlm::gauge(tlm::Gauge::LsqOccupancy, u64::from(t.lq_used + t.sq_used));
        }
        self.retire();
        if self.ctx.finished {
            return;
        }
        self.ctx.complete_execution();
        self.issue();
        self.ctx.dispatch();
        self.fetch();
        // Selective squash requested by the engine (BR chain rollback).
        if let Some(engine) = self.engine.as_mut() {
            let tags = engine.take_squash_tags();
            if !tags.is_empty() {
                self.ctx.kill_tagged(&tags);
            }
        }
        #[cfg(feature = "debug-invariants")]
        self.ctx.check_invariants();
    }

    /// Memory hierarchy statistics flush into the stat bundle.
    pub fn flush_mem_stats(&mut self) {
        self.ctx.flush_mem_stats();
    }
}

impl SimContext {
    fn apply_partition(&mut self, active: ActiveThreads) {
        if let Some((mt, side)) = self.quotas {
            let set = |t: &mut ThreadCtx, q: ThreadQuota, on: bool| {
                t.width = q.width;
                t.rob_cap = q.rob;
                t.lq_cap = q.lq;
                t.sq_cap = q.sq;
                t.prf_cap = q.prf;
                t.active = on && q.width > 0;
            };
            set(&mut self.threads[MT], mt, true);
            let side_on =
                active != ActiveThreads::MainOnly && active != ActiveThreads::MainPartitioned;
            set(&mut self.threads[HT_A], side, side_on);
            set(
                &mut self.threads[HT_B],
                ThreadQuota {
                    width: 0,
                    rob: 0,
                    lq: 0,
                    sq: 0,
                    prf: 0,
                },
                false,
            );
            self.threads[MT].active = true;
            return;
        }
        let plan = PartitionPlan::for_threads(active);
        let cfg = &self.cfg;
        let set = |t: &mut ThreadCtx, eighths: u32| {
            t.width = PartitionPlan::scale(cfg.width, eighths);
            t.rob_cap = PartitionPlan::scale(cfg.rob, eighths);
            t.lq_cap = PartitionPlan::scale(cfg.lq, eighths);
            t.sq_cap = PartitionPlan::scale(cfg.sq, eighths);
            t.prf_cap = PartitionPlan::scale(cfg.prf, eighths);
            t.active = eighths > 0;
        };
        set(&mut self.threads[MT], plan.mt_eighths);
        // For MT+ITO, the single helper runs in slot HT_A with the IT share.
        if active == ActiveThreads::MainPlusIto {
            set(&mut self.threads[HT_A], plan.it_eighths);
            set(&mut self.threads[HT_B], 0);
        } else {
            set(&mut self.threads[HT_A], plan.ot_eighths);
            set(&mut self.threads[HT_B], plan.it_eighths);
        }
        self.threads[MT].active = true;
    }

    fn alloc_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    /// Cross-stage microarchitectural invariants, verified once per cycle
    /// under the `debug-invariants` feature (the `phelps-verify` fuzzing
    /// harness and CI compile with it; experiment builds pay nothing).
    ///
    /// Covered here: ROB occupancy within the partition cap, program-order
    /// (strictly ascending) ROB contents, LQ/SQ/PRF usage counters exactly
    /// matching the live post-dispatch instructions (a drifting counter is
    /// the usage-counter analog of a free list double-allocating), rename
    /// and predicate-rename entries pointing only at live same-thread
    /// producers of the mapped register, and issue-queue entries being
    /// live waiting instructions. Stage-local invariants (in-order retire,
    /// LSQ forwarding age order, MSHR occupancy) live in their stage
    /// modules and in `phelps-uarch`.
    #[cfg(feature = "debug-invariants")]
    fn check_invariants(&self) {
        let mut rob_total = 0usize;
        for (tid, t) in self.threads.iter().enumerate() {
            rob_total += t.rob.len();
            assert!(
                t.rob.len() as u32 <= t.rob_cap || t.rob_cap == 0,
                "tid {tid}: ROB occupancy {} exceeds partition cap {}",
                t.rob.len(),
                t.rob_cap
            );
            assert!(
                t.frontend <= t.rob.len(),
                "tid {tid}: frontend pipe count {} exceeds ROB occupancy {}",
                t.frontend,
                t.rob.len()
            );
            let mut prev: Option<u64> = None;
            for &s in &t.rob {
                if let Some(p) = prev {
                    assert!(
                        p < s,
                        "tid {tid}: ROB out of program order ({p} before {s})"
                    );
                }
                prev = Some(s);
            }
            // Recompute resource usage from the live post-dispatch
            // instructions; the incremental counters must agree exactly.
            // The load/store index lists must also be exactly the ROB
            // filtered by the meta flags — a drifting list would make
            // forwarding or the store-set check miss a store.
            let (mut lq, mut sq, mut prf) = (0u32, 0u32, 0u32);
            let (mut loads, mut stores) = (Vec::new(), Vec::new());
            for &s in &t.rob {
                let Some(m) = self.insts.meta(s) else {
                    continue;
                };
                if m.is_load() {
                    loads.push(s);
                }
                if m.is_store() {
                    stores.push(s);
                }
                if matches!(self.insts.stage(s), Some(Stage::Frontend)) {
                    continue;
                }
                lq += u32::from(m.is_load());
                sq += u32::from(m.is_store());
                prf += u32::from(m.has_dst());
            }
            assert_eq!(
                (t.lq_used, t.sq_used, t.prf_used),
                (lq, sq, prf),
                "tid {tid}: resource usage counters (lq, sq, prf) drifted from live instructions"
            );
            assert!(
                t.loads.iter().copied().eq(loads.iter().copied()),
                "tid {tid}: load index list drifted from the ROB"
            );
            assert!(
                t.stores.iter().copied().eq(stores.iter().copied()),
                "tid {tid}: store index list drifted from the ROB"
            );
            for (r, slot) in t.rmt.iter().enumerate() {
                let Some(seq) = slot else { continue };
                let di = self.insts.get(*seq).unwrap_or_else(|| {
                    panic!("tid {tid}: rmt[{r}] -> seq {seq} which is no longer in flight")
                });
                assert_eq!(di.tid, tid, "rmt[{r}] crosses threads");
                assert_eq!(
                    di.inst.dst().map(|d| d.index()),
                    Some(r),
                    "tid {tid}: rmt[{r}] -> seq {seq} which does not produce x{r}"
                );
            }
            for (p, slot) in t.pred_rmt.iter().enumerate() {
                let Some(seq) = slot else { continue };
                let di = self.insts.get(*seq).unwrap_or_else(|| {
                    panic!("tid {tid}: pred_rmt[{p}] -> seq {seq} which is no longer in flight")
                });
                assert_eq!(di.tid, tid, "pred_rmt[{p}] crosses threads");
                let produces = matches!(
                    di.side.as_ref().map(|s| s.kind),
                    Some(crate::sim::types::SideKind::PredProducer { dest }) if dest as usize == p
                );
                assert!(
                    produces,
                    "tid {tid}: pred_rmt[{p}] -> seq {seq} which does not produce p{p}"
                );
            }
        }
        // Every slab entry is in exactly one ROB and vice versa.
        assert_eq!(
            self.insts.live(),
            rob_total,
            "slab live count drifted from ROB membership"
        );
        for &s in &self.iq {
            let stage = self.insts.stage(s).unwrap_or_else(|| {
                panic!("issue queue holds seq {s} which is no longer in flight")
            });
            assert!(
                matches!(stage, Stage::InIq),
                "issue queue holds seq {s} in stage {stage:?}"
            );
            // The broadcast-maintained ready-dep count must equal the
            // count recomputed from the dep slots: a drift here is a
            // missed or double wakeup.
            let m = self.insts.meta(s).expect("live iq entry");
            let unready = m
                .deps
                .iter()
                .chain(m.pred_deps.iter())
                .filter(|&&d| {
                    d != NO_DEP && !matches!(self.insts.stage(d), None | Some(Stage::Done))
                })
                .count() as u8;
            assert_eq!(
                m.unready, unready,
                "seq {s}: ready-dep count drifted from dep-slot stages"
            );
        }
    }

    fn flush_mem_stats(&mut self) {
        let (acc, miss, pf_hits) = self.hierarchy.l1d_stats();
        self.stats.l1d_accesses = acc;
        self.stats.l1d_misses = miss;
        let (st_acc, st_miss) = self.hierarchy.l1d_store_stats();
        self.stats.l1d_store_accesses = st_acc;
        self.stats.l1d_store_misses = st_miss;
        self.stats.prefetch_hits = pf_hits;
        let (i_acc, i_miss) = self.hierarchy.l1i_stats();
        self.stats.l1i_accesses = i_acc;
        self.stats.l1i_misses = i_miss;
        self.stats.l2_misses = self.hierarchy.l2_misses();
        self.stats.l3_misses = self.hierarchy.l3_misses();
        self.stats.prefetches_issued = self.hierarchy.prefetches_issued();
        let (l1i_p, l1d_p, l2_p, l3_p, dram_p) = self.hierarchy.port_stalls();
        self.stats.l1i_port_stalls = l1i_p;
        self.stats.l1d_port_stalls = l1d_p;
        self.stats.l2_port_stalls = l2_p;
        self.stats.l3_port_stalls = l3_p;
        self.stats.dram_queue_stalls = dram_p;
    }
}
