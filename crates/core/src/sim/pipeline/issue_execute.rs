//! Issue/execute stage: oldest-first wakeup/select over the shared issue
//! queue under per-lane budgets, trace-fed main-thread execution (with
//! branch resolution), and real-value side-thread execution (predicate
//! evaluation, store-cache-backed loads, engine steering).
//!
//! Readiness is a broadcast-maintained counter, not a per-cycle re-check:
//! every instruction carries a ready-dep count in the slab's meta column,
//! and the completion sweep decrements the counts of in-queue consumers
//! when a producer turns `Done`. Select then tests a single byte per
//! candidate.

use super::{Pipeline, SimContext, Stage, NO_DEP};
use crate::sim::types::{ExecInfo, PreExecEngine, SideAction, SideKind, MT, NUM_THREADS};
use phelps_isa::{Inst, MemWidth, Reg};
use phelps_uarch::bpred::DirectionPredictor;
use phelps_uarch::mem::MemRequest;

impl SimContext {
    /// Whether a dep slot is satisfied right now (dispatch-time seeding
    /// of the ready-dep count; steady-state readiness is maintained by
    /// [`SimContext::wakeup_consumers`]).
    pub(super) fn dep_slot_ready(&self, dep: u64) -> bool {
        // A reclaimed seq (stage None) means the producer retired: its
        // value is architecturally committed, hence ready.
        dep == NO_DEP || matches!(self.insts.stage(dep), None | Some(Stage::Done))
    }

    pub(super) fn dep_value(&self, tid: usize, reg: Reg, dep: u64) -> u64 {
        if reg.is_zero() {
            return 0;
        }
        if dep != NO_DEP {
            if let Some(di) = self.insts.get(dep) {
                return di.result;
            }
        }
        self.threads[tid].regs[reg.index()]
    }

    pub(super) fn complete_execution(&mut self) {
        let now = self.cycle;
        let mut completed = std::mem::take(&mut self.completed_scratch);
        completed.clear();
        self.insts.sweep_completed(now, &mut completed);
        for &p in &completed {
            self.wakeup_consumers(p);
        }
        self.completed_scratch = completed;
    }

    /// Wakeup broadcast: a producer turned `Done`; decrement the
    /// ready-dep count of every in-queue consumer whose dep slots name
    /// it. Each slot is accounted exactly once (the transition to `Done`
    /// is unique per seq), so the counts cannot underflow.
    pub(super) fn wakeup_consumers(&mut self, producer: u64) {
        let iq = &self.iq;
        let insts = &mut self.insts;
        for &c in iq {
            let Some(m) = insts.meta_mut(c) else { continue };
            let hits = m.deps.iter().filter(|&&d| d == producer).count()
                + m.pred_deps.iter().filter(|&&d| d == producer).count();
            if hits > 0 {
                #[cfg(feature = "debug-invariants")]
                assert!(
                    m.unready as usize >= hits,
                    "seq {c}: wakeup underflow (unready {} < hits {hits})",
                    m.unready
                );
                m.unready -= hits as u8;
            }
        }
    }

    /// A side load's value when served by the memory image (store cache
    /// missed).
    fn side_load_value(&mut self, addr: u64, width: MemWidth, signed: bool) -> u64 {
        self.timing_mem.read(addr, width, signed)
    }
}

impl<E: PreExecEngine> Pipeline<E> {
    pub(super) fn issue(&mut self) {
        let mut budget = [
            self.ctx.cfg.lanes_alu as i32,
            self.ctx.cfg.lanes_mem as i32,
            self.ctx.cfg.lanes_complex as i32,
        ];
        // Oldest-first selection: the IQ is kept sorted ascending at
        // dispatch, so walking it in order *is* oldest-first. The walk
        // runs over a reused scratch snapshot because `execute` can
        // mutate the IQ mid-walk (side squash / terminate); entries that
        // issue leave `Stage::InIq`, so one retain pass at the end prunes
        // them in O(n) without the old per-entry `issued.contains` scan.
        let mut scratch = std::mem::take(&mut self.ctx.issue_scratch);
        scratch.clear();
        scratch.extend_from_slice(&self.ctx.iq);
        for &seq in &scratch {
            if budget.iter().all(|b| *b <= 0) {
                break;
            }
            let Some(m) = self.ctx.insts.meta(seq) else {
                continue;
            };
            let lane_idx = m.lane.index();
            if budget[lane_idx] <= 0 {
                continue;
            }
            if m.unready > 0 {
                continue;
            }
            if m.is_load()
                && m.tid as usize == MT
                && self
                    .ctx
                    .insts
                    .get(seq)
                    .is_some_and(|di| self.ctx.violating_loads.contains(&di.pc))
                && !self.ctx.older_stores_resolved(MT, seq)
            {
                // MT store-set-style predictor: loads that violated before
                // wait for older stores' addresses. Side-thread loads issue
                // freely: a side ordering race merely reads slightly stale
                // data (the helper thread is speculative anyway), and never
                // squashes — a side squash would desynchronize the engine's
                // iteration sequencing.
                continue;
            }
            budget[lane_idx] -= 1;
            self.execute(seq);
        }
        self.ctx.issue_scratch = scratch;
        let insts = &self.ctx.insts;
        self.ctx
            .iq
            .retain(|&s| matches!(insts.stage(s), Some(Stage::InIq)));
        self.ctx.thread_priority = (self.ctx.thread_priority + 1) % NUM_THREADS;
    }

    fn execute(&mut self, seq: u64) {
        let m = self.ctx.insts.meta(seq).expect("issuing");
        let tid = m.tid as usize;
        if m.is_dead() {
            // Dead instructions drain without effects; they still
            // broadcast so consumers waiting on them wake up.
            self.ctx.insts.set_stage(seq, Stage::Done);
            self.ctx.wakeup_consumers(seq);
            return;
        }
        if tid == MT {
            self.execute_mt(seq);
        } else {
            self.execute_side(seq);
        }
    }

    fn execute_mt(&mut self, seq: u64) {
        let now = self.ctx.cycle;
        let latency = self.ctx.insts.meta(seq).expect("issuing").latency;
        let (inst, pc, addr) = {
            let di = self.ctx.insts.get(seq).expect("issuing");
            (di.inst, di.pc, di.rec.mem_addr)
        };
        let done = if inst.is_load() {
            // Store-to-load forwarding within the thread.
            if let Some(_fwd) = self.ctx.forwarding_store(MT, seq, addr) {
                #[cfg(feature = "debug-invariants")]
                assert!(
                    _fwd < seq,
                    "LSQ age order: load {seq} forwarded from younger store {_fwd}"
                );
                now + 2
            } else {
                let r = self
                    .ctx
                    .hierarchy
                    .request(MemRequest::load(MT, pc, addr, now));
                r.done_cycle
            }
        } else {
            now + latency as u64
        };
        self.ctx.insts.set_stage(seq, Stage::Exec { done });
        if inst.is_store() {
            self.check_load_violation(MT, seq, addr);
        }
        if inst.is_cond_branch() {
            // Resolution happens at completion; model it here with the
            // completion time (the branch redirects fetch at `done`).
            self.resolve_mt_branch(seq, done);
        }
    }

    fn resolve_mt_branch(&mut self, seq: u64, done: u64) {
        let (mispredicted, taken, bp_ckpt, engine_ckpt, pc) = {
            let di = self.ctx.insts.get(seq).expect("issuing");
            (
                di.mispredicted,
                di.rec.taken,
                di.bp_ckpt.clone(),
                di.engine_ckpt.clone(),
                di.pc,
            )
        };
        if !mispredicted {
            return;
        }
        // Repair speculative predictor history: rewind past the wrong
        // speculation, then insert the actual outcome.
        if let Some(ckpt) = bp_ckpt {
            self.ctx.bpred.recover(&ckpt);
            self.ctx.bpred.speculate(pc, taken);
        }
        if let (Some(engine), Some(ckpt)) = (self.engine.as_mut(), engine_ckpt.as_ref()) {
            engine.restore(ckpt);
        }
        // Fetch resumes after resolution; the refill delay is inherent in
        // the frontend-pipe depth of newly fetched instructions.
        if self.ctx.threads[MT].blocking_branch == Some(seq) {
            self.ctx.threads[MT].blocking_branch = None;
            self.ctx.threads[MT].fetch_stall_until = done + 1;
        }
    }

    fn execute_side(&mut self, seq: u64) {
        let now = self.ctx.cycle;
        let meta = *self.ctx.insts.meta(seq).expect("issuing");
        let (inst, tid, side) = {
            let di = self.ctx.insts.get(seq).expect("issuing");
            (di.inst, di.tid, di.side.expect("side inst"))
        };

        // Evaluate the predicate source against the bound producers
        // (pred-RMT binding happened at dispatch). An OR-guard (§V-K)
        // enables when either of its two sources does.
        let enabled = {
            let regs = side.pred_src.regs();
            if regs[0].is_none() {
                true // PredSource::Always
            } else {
                let eval_one = |slot: usize| -> Option<bool> {
                    let (reg, direction) = regs[slot]?;
                    let dep = meta.pred_deps[slot];
                    let prod = (dep != NO_DEP).then(|| self.ctx.insts.get(dep)).flatten();
                    Some(match prod {
                        Some(prod) => prod.enabled && prod.taken == direction,
                        None => {
                            // Producer already retired: read the committed
                            // predicate file (in-order retire guarantees it
                            // holds the same iteration's value).
                            let (en, taken) = self.ctx.threads[tid].pred_vals[reg as usize];
                            en && taken == direction
                        }
                    })
                };
                eval_one(0).unwrap_or(false) || eval_one(1).unwrap_or(false)
            }
        };

        // Gather source values through the dep slots — no allocation on
        // the wakeup path (the slots are a fixed-size meta column).
        let srcs = inst.srcs();
        let mut vals = [0u64; 2];
        for (i, r) in srcs.iter().enumerate() {
            vals[i] = self.ctx.dep_value(tid, r, meta.deps[i]);
        }

        let mut result: u64 = 0;
        let mut taken = false;
        let mut mem_addr: u64 = 0;
        let mut done = now + meta.latency as u64;

        match inst {
            Inst::Alu { op, .. } => result = op.eval(vals[0], vals[1]),
            Inst::AluImm { op, imm, .. } => {
                if side.kind == SideKind::LiveInMove {
                    result = side.live_in_value;
                } else {
                    result = op.eval(vals[0], imm as i64 as u64);
                }
            }
            Inst::Li { imm, .. } => {
                result = if side.kind == SideKind::LiveInMove {
                    side.live_in_value
                } else {
                    imm as u64
                };
            }
            Inst::Load {
                width,
                signed,
                offset,
                ..
            } => {
                mem_addr = vals[0].wrapping_add(offset as i64 as u64);
                // Value: in-flight forwarding > store cache > memory image.
                let fwd = self.ctx.forwarding_store(tid, seq, mem_addr);
                #[cfg(feature = "debug-invariants")]
                if let Some(fseq) = fwd {
                    assert!(
                        fseq < seq,
                        "LSQ age order: side load {seq} forwarded from younger store {fseq}"
                    );
                }
                if let Some(fseq) = fwd {
                    let f = self.ctx.insts.get(fseq).expect("forwarding store");
                    // Forward only enabled stores; a disabled store is a
                    // no-op, so fall through to older state.
                    if f.enabled {
                        result = super::lsq::extract(f.result, mem_addr, width, signed);
                        done = now + 2;
                    } else {
                        result = self.ctx.side_load_value(mem_addr, width, signed);
                        done = now + self.ctx.cfg.l1d.latency as u64;
                    }
                } else if let Some(dw) = self.ctx.store_cache.read(mem_addr) {
                    result = super::lsq::extract(dw, mem_addr, width, signed);
                    done = now + self.ctx.cfg.l1d.latency as u64;
                } else {
                    result = self.ctx.timing_mem.read(mem_addr, width, signed);
                    let r = self
                        .ctx
                        .hierarchy
                        .request(MemRequest::load(tid, side.pc, mem_addr, now));
                    done = r.done_cycle;
                }
            }
            Inst::Store { offset, .. } => {
                mem_addr = vals[0].wrapping_add(offset as i64 as u64);
                result = vals[1]; // data
            }
            Inst::Branch { cond, .. } => {
                taken = cond.eval(vals[0], vals[1]);
            }
            Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Halt => {}
        }

        if inst.is_store() {
            self.check_load_violation(tid, seq, mem_addr);
        }

        {
            let di = self.ctx.insts.get_mut(seq).expect("present");
            di.result = result;
            di.taken = taken;
            di.mem_addr = mem_addr;
            di.enabled = enabled;
        }
        self.ctx.insts.set_stage(seq, Stage::Exec { done });

        let info = ExecInfo {
            value: result,
            taken,
            addr: mem_addr,
            enabled,
        };
        let mut action = SideAction::Continue;
        if let Some(engine) = self.engine.as_mut() {
            engine.side_executed(tid, &side, &info, now);
            if matches!(
                side.kind,
                SideKind::LoopBranch | SideKind::TerminalBranch | SideKind::HeaderBranch
            ) {
                action = engine.side_branch_resolved(tid, &side, taken);
            }
        }
        match action {
            SideAction::Continue => {}
            SideAction::SquashYounger => self.ctx.squash_side_from(tid, seq + 1),
            SideAction::Terminate => self.terminate_preexec(0),
        }
    }
}
