//! Issue/execute stage: oldest-first wakeup/select over the shared issue
//! queue under per-lane budgets, trace-fed main-thread execution (with
//! branch resolution), and real-value side-thread execution (predicate
//! evaluation, store-cache-backed loads, engine steering).

use super::{exec_latency, Lane, Pipeline, SimContext, Stage};
use crate::sim::types::{ExecInfo, PreExecEngine, SideAction, SideKind, MT, NUM_THREADS};
use phelps_isa::{Inst, MemWidth, Reg};
use phelps_uarch::bpred::DirectionPredictor;
use phelps_uarch::mem::MemRequest;

impl SimContext {
    pub(super) fn dep_ready(&self, dep: Option<u64>) -> bool {
        match dep {
            None => true,
            Some(p) => match self.insts.get(&p) {
                None => true, // producer retired
                Some(di) => matches!(di.stage, Stage::Done),
            },
        }
    }

    pub(super) fn dep_value(&self, tid: usize, reg: Reg, dep: Option<u64>) -> u64 {
        if reg.is_zero() {
            return 0;
        }
        match dep {
            Some(p) => match self.insts.get(&p) {
                Some(di) => di.result,
                None => self.threads[tid].regs[reg.index()],
            },
            None => self.threads[tid].regs[reg.index()],
        }
    }

    pub(super) fn complete_execution(&mut self) {
        let now = self.cycle;
        for di in self.insts.values_mut() {
            if let Stage::Exec { done } = di.stage {
                if done <= now {
                    di.stage = Stage::Done;
                }
            }
        }
    }

    /// A side load's value when served by the memory image (store cache
    /// missed).
    fn side_load_value(&mut self, addr: u64, width: MemWidth, signed: bool) -> u64 {
        self.timing_mem.read(addr, width, signed)
    }
}

impl<E: PreExecEngine> Pipeline<E> {
    pub(super) fn issue(&mut self) {
        let mut budget = [
            self.ctx.cfg.lanes_alu as i32,
            self.ctx.cfg.lanes_mem as i32,
            self.ctx.cfg.lanes_complex as i32,
        ];
        // Oldest-first selection: the IQ is kept sorted ascending at
        // dispatch, so walking it in order *is* oldest-first. The walk
        // runs over a reused scratch snapshot because `execute` can
        // mutate the IQ mid-walk (side squash / terminate); entries that
        // issue leave `Stage::InIq`, so one retain pass at the end prunes
        // them in O(n) without the old per-entry `issued.contains` scan.
        let mut scratch = std::mem::take(&mut self.ctx.issue_scratch);
        scratch.clear();
        scratch.extend_from_slice(&self.ctx.iq);
        for &seq in &scratch {
            if budget.iter().all(|b| *b <= 0) {
                break;
            }
            let Some(di) = self.ctx.insts.get(&seq) else {
                continue;
            };
            let lane_idx = match di.lane {
                Lane::Alu => 0,
                Lane::Mem => 1,
                Lane::Complex => 2,
            };
            if budget[lane_idx] <= 0 {
                continue;
            }
            if !di.deps.iter().all(|d| self.ctx.dep_ready(*d)) {
                continue;
            }
            if !di.pred_deps.iter().all(|d| self.ctx.dep_ready(*d)) {
                continue;
            }
            if di.inst.is_load()
                && di.tid == MT
                && self.ctx.violating_loads.contains(&di.pc)
                && !self.ctx.older_stores_resolved(di.tid, seq)
            {
                // MT store-set-style predictor: loads that violated before
                // wait for older stores' addresses. Side-thread loads issue
                // freely: a side ordering race merely reads slightly stale
                // data (the helper thread is speculative anyway), and never
                // squashes — a side squash would desynchronize the engine's
                // iteration sequencing.
                continue;
            }
            budget[lane_idx] -= 1;
            self.execute(seq);
        }
        self.ctx.issue_scratch = scratch;
        let insts = &self.ctx.insts;
        self.ctx
            .iq
            .retain(|s| insts.get(s).is_some_and(|di| matches!(di.stage, Stage::InIq)));
        self.ctx.thread_priority = (self.ctx.thread_priority + 1) % NUM_THREADS;
    }

    fn execute(&mut self, seq: u64) {
        let di = self.ctx.insts.get(&seq).expect("issuing");
        let tid = di.tid;
        if di.dead {
            let di = self.ctx.insts.get_mut(&seq).expect("present");
            di.stage = Stage::Done;
            return;
        }
        if tid == MT {
            self.execute_mt(seq);
        } else {
            self.execute_side(seq);
        }
    }

    fn execute_mt(&mut self, seq: u64) {
        let now = self.ctx.cycle;
        let (inst, pc, addr) = {
            let di = &self.ctx.insts[&seq];
            (di.inst, di.pc, di.rec.mem_addr)
        };
        let done = if inst.is_load() {
            // Store-to-load forwarding within the thread.
            if let Some(_fwd) = self.ctx.forwarding_store(MT, seq, addr) {
                #[cfg(feature = "debug-invariants")]
                assert!(
                    _fwd < seq,
                    "LSQ age order: load {seq} forwarded from younger store {_fwd}"
                );
                now + 2
            } else {
                let r = self
                    .ctx
                    .hierarchy
                    .request(MemRequest::load(MT, pc, addr, now));
                r.done_cycle
            }
        } else {
            now + exec_latency(&inst) as u64
        };
        {
            let di = self.ctx.insts.get_mut(&seq).expect("present");
            di.stage = Stage::Exec { done };
        }
        if inst.is_store() {
            self.check_load_violation(MT, seq, addr);
        }
        if inst.is_cond_branch() {
            // Resolution happens at completion; model it here with the
            // completion time (the branch redirects fetch at `done`).
            self.resolve_mt_branch(seq, done);
        }
    }

    fn resolve_mt_branch(&mut self, seq: u64, done: u64) {
        let (mispredicted, taken, bp_ckpt, engine_ckpt, pc) = {
            let di = &self.ctx.insts[&seq];
            (
                di.mispredicted,
                di.rec.taken,
                di.bp_ckpt.clone(),
                di.engine_ckpt.clone(),
                di.pc,
            )
        };
        if !mispredicted {
            return;
        }
        // Repair speculative predictor history: rewind past the wrong
        // speculation, then insert the actual outcome.
        if let Some(ckpt) = bp_ckpt {
            self.ctx.bpred.recover(&ckpt);
            self.ctx.bpred.speculate(pc, taken);
        }
        if let (Some(engine), Some(ckpt)) = (self.engine.as_mut(), engine_ckpt.as_ref()) {
            engine.restore(ckpt);
        }
        // Fetch resumes after resolution; the refill delay is inherent in
        // the frontend-pipe depth of newly fetched instructions.
        if self.ctx.threads[MT].blocking_branch == Some(seq) {
            self.ctx.threads[MT].blocking_branch = None;
            self.ctx.threads[MT].fetch_stall_until = done + 1;
        }
    }

    fn execute_side(&mut self, seq: u64) {
        let now = self.ctx.cycle;
        let (inst, tid, side) = {
            let di = &self.ctx.insts[&seq];
            (di.inst, di.tid, di.side.expect("side inst"))
        };

        // Evaluate the predicate source against the bound producers
        // (pred-RMT binding happened at dispatch). An OR-guard (§V-K)
        // enables when either of its two sources does.
        let enabled = {
            let regs = side.pred_src.regs();
            if regs[0].is_none() {
                true // PredSource::Always
            } else {
                let deps = self.ctx.insts[&seq].pred_deps;
                let eval_one = |slot: usize| -> Option<bool> {
                    let (reg, direction) = regs[slot]?;
                    Some(match deps[slot].and_then(|p| self.ctx.insts.get(&p)) {
                        Some(prod) => prod.enabled && prod.taken == direction,
                        None => {
                            // Producer already retired: read the committed
                            // predicate file (in-order retire guarantees it
                            // holds the same iteration's value).
                            let (en, taken) = self.ctx.threads[tid].pred_vals[reg as usize];
                            en && taken == direction
                        }
                    })
                };
                eval_one(0).unwrap_or(false) || eval_one(1).unwrap_or(false)
            }
        };

        // Gather source values.
        let srcs: Vec<Reg> = inst.srcs().into_iter().collect();
        let deps = self.ctx.insts[&seq].deps.clone();
        let vals: Vec<u64> = srcs
            .iter()
            .zip(deps.iter())
            .map(|(r, d)| self.ctx.dep_value(tid, *r, *d))
            .collect();

        let mut result: u64 = 0;
        let mut taken = false;
        let mut mem_addr: u64 = 0;
        let mut done = now + exec_latency(&inst) as u64;

        match inst {
            Inst::Alu { op, .. } => result = op.eval(vals[0], vals[1]),
            Inst::AluImm { op, imm, .. } => {
                if side.kind == SideKind::LiveInMove {
                    result = side.live_in_value;
                } else {
                    result = op.eval(vals[0], imm as i64 as u64);
                }
            }
            Inst::Li { imm, .. } => {
                result = if side.kind == SideKind::LiveInMove {
                    side.live_in_value
                } else {
                    imm as u64
                };
            }
            Inst::Load {
                width,
                signed,
                offset,
                ..
            } => {
                mem_addr = vals[0].wrapping_add(offset as i64 as u64);
                // Value: in-flight forwarding > store cache > memory image.
                let fwd = self.ctx.forwarding_store(tid, seq, mem_addr);
                #[cfg(feature = "debug-invariants")]
                if let Some(fseq) = fwd {
                    assert!(
                        fseq < seq,
                        "LSQ age order: side load {seq} forwarded from younger store {fseq}"
                    );
                }
                if let Some(fseq) = fwd {
                    let f = &self.ctx.insts[&fseq];
                    // Forward only enabled stores; a disabled store is a
                    // no-op, so fall through to older state.
                    if f.enabled {
                        result = super::lsq::extract(f.result, mem_addr, width, signed);
                        done = now + 2;
                    } else {
                        result = self.ctx.side_load_value(mem_addr, width, signed);
                        done = now + self.ctx.cfg.l1d.latency as u64;
                    }
                } else if let Some(dw) = self.ctx.store_cache.read(mem_addr) {
                    result = super::lsq::extract(dw, mem_addr, width, signed);
                    done = now + self.ctx.cfg.l1d.latency as u64;
                } else {
                    result = self.ctx.timing_mem.read(mem_addr, width, signed);
                    let r = self
                        .ctx
                        .hierarchy
                        .request(MemRequest::load(tid, side.pc, mem_addr, now));
                    done = r.done_cycle;
                }
            }
            Inst::Store { offset, .. } => {
                mem_addr = vals[0].wrapping_add(offset as i64 as u64);
                result = vals[1]; // data
            }
            Inst::Branch { cond, .. } => {
                taken = cond.eval(vals[0], vals[1]);
            }
            Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Halt => {}
        }

        if inst.is_store() {
            self.check_load_violation(tid, seq, mem_addr);
        }

        {
            let di = self.ctx.insts.get_mut(&seq).expect("present");
            di.result = result;
            di.taken = taken;
            di.mem_addr = mem_addr;
            di.enabled = enabled;
            di.stage = Stage::Exec { done };
        }

        let info = ExecInfo {
            value: result,
            taken,
            addr: mem_addr,
            enabled,
        };
        let mut action = SideAction::Continue;
        if let Some(engine) = self.engine.as_mut() {
            engine.side_executed(tid, &side, &info, now);
            if matches!(
                side.kind,
                SideKind::LoopBranch | SideKind::TerminalBranch | SideKind::HeaderBranch
            ) {
                action = engine.side_branch_resolved(tid, &side, taken);
            }
        }
        match action {
            SideAction::Continue => {}
            SideAction::SquashYounger => self.ctx.squash_side_from(tid, seq + 1),
            SideAction::Terminate => self.terminate_preexec(0),
        }
    }
}
