//! Data-oriented in-flight instruction table.
//!
//! Sequence numbers are dense and monotonically allocated, so the
//! in-flight window is a contiguous seq range at all times. [`InstSlab`]
//! exploits that: a `VecDeque`-backed slab indexed by `seq - base` gives
//! O(1) lookup with no hashing, and in-order reclamation at retire (the
//! front of the deque pops as soon as the oldest slots die, so the slab
//! length stays bounded by the in-flight window plus transient holes
//! from out-of-order side-thread removal).
//!
//! The hot per-cycle scalar state is split out of the payload into two
//! structure-of-arrays columns kept parallel to the slots:
//!
//! * the **stage column** ([`Stage`], with the exec-done cycle inline) —
//!   the completion sweep walks it contiguously instead of chasing a
//!   hash map;
//! * the **meta column** ([`InstMeta`]: lane, thread id, latency, the
//!   ready-dep count, flag bits, and the four producer-seq dep slots) —
//!   issue select reads one 48-byte record per candidate and the wakeup
//!   broadcast decrements ready-dep counts without touching payloads.
//!
//! The payload ([`DynInst`]: trace record, checkpoints, side metadata,
//! results) is touched only when an instruction actually executes or
//! retires.

use super::{DynInst, Stage};
use std::collections::VecDeque;

/// Sentinel for an empty/ready dep slot (never a valid seq: allocation
/// starts at 1 and a simulation retires far fewer than 2^64 records).
pub(super) const NO_DEP: u64 = u64::MAX;

/// Issue lane class, with a stable index for the budget array.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(super) enum Lane {
    Alu = 0,
    Mem = 1,
    Complex = 2,
}

impl Lane {
    pub(super) fn index(self) -> usize {
        self as usize
    }
}

const F_LOAD: u8 = 1 << 0;
const F_STORE: u8 = 1 << 1;
const F_DST: u8 = 1 << 2;
const F_DEAD: u8 = 1 << 3;

/// Hot per-instruction scalar state (structure-of-arrays column).
#[derive(Clone, Copy, Debug)]
pub(super) struct InstMeta {
    /// Issue lane class.
    pub lane: Lane,
    /// Hardware thread context.
    pub tid: u8,
    /// Non-memory execution latency in cycles.
    pub latency: u8,
    /// Dep slots (register + predicate) whose producer has not completed.
    /// Maintained by the completion broadcast; issue-ready at zero.
    pub unready: u8,
    flags: u8,
    /// Register-source producer seqs, parallel to `inst.srcs()`.
    /// [`NO_DEP`] marks an empty slot (no producer in flight).
    pub deps: [u64; 2],
    /// Predicate-source producer seqs (two slots for OR-guards, §V-K).
    pub pred_deps: [u64; 2],
}

impl InstMeta {
    pub(super) fn new(lane: Lane, tid: usize, latency: u32, inst: &phelps_isa::Inst) -> InstMeta {
        debug_assert!(latency <= u8::MAX as u32, "exec latency overflows u8");
        let mut flags = 0;
        if inst.is_load() {
            flags |= F_LOAD;
        }
        if inst.is_store() {
            flags |= F_STORE;
        }
        if inst.dst().is_some() {
            flags |= F_DST;
        }
        InstMeta {
            lane,
            tid: tid as u8,
            latency: latency as u8,
            unready: 0,
            flags,
            deps: [NO_DEP; 2],
            pred_deps: [NO_DEP; 2],
        }
    }

    pub(super) fn is_load(&self) -> bool {
        self.flags & F_LOAD != 0
    }

    pub(super) fn is_store(&self) -> bool {
        self.flags & F_STORE != 0
    }

    pub(super) fn has_dst(&self) -> bool {
        self.flags & F_DST != 0
    }

    pub(super) fn is_dead(&self) -> bool {
        self.flags & F_DEAD != 0
    }

    pub(super) fn set_dead(&mut self) {
        self.flags |= F_DEAD;
    }
}

/// A removed instruction: payload plus the column state it held, so
/// retire/squash bookkeeping (resource release, dead check) works after
/// the columns have been reclaimed.
pub(super) struct RemovedInst {
    pub di: DynInst,
    pub stage: Stage,
    pub meta: InstMeta,
}

/// The slab. See the module docs for the layout rationale.
#[derive(Debug, Default)]
pub(super) struct InstSlab {
    /// Seq of logical slot 0. Starts at 1 (the first allocated seq).
    base: u64,
    slots: VecDeque<Option<DynInst>>,
    stage: VecDeque<Option<Stage>>,
    meta: VecDeque<InstMeta>,
    live: usize,
}

impl InstSlab {
    pub(super) fn new() -> InstSlab {
        InstSlab {
            base: 1,
            slots: VecDeque::new(),
            stage: VecDeque::new(),
            meta: VecDeque::new(),
            live: 0,
        }
    }

    fn index(&self, seq: u64) -> Option<usize> {
        if seq < self.base || seq >= self.base + self.slots.len() as u64 {
            return None;
        }
        Some((seq - self.base) as usize)
    }

    /// Number of live instructions. (Used by the `debug-invariants`
    /// whole-window audit.)
    #[cfg_attr(not(feature = "debug-invariants"), allow(dead_code))]
    pub(super) fn live(&self) -> usize {
        self.live
    }

    /// Inserts the next instruction. Seqs must arrive in allocation
    /// order — the slab is dense by construction.
    pub(super) fn insert(&mut self, di: DynInst, stage: Stage, meta: InstMeta) {
        assert_eq!(
            di.seq,
            self.base + self.slots.len() as u64,
            "slab insert out of allocation order"
        );
        self.slots.push_back(Some(di));
        self.stage.push_back(Some(stage));
        self.meta.push_back(meta);
        self.live += 1;
    }

    pub(super) fn contains(&self, seq: u64) -> bool {
        self.index(seq).is_some_and(|i| self.stage[i].is_some())
    }

    pub(super) fn get(&self, seq: u64) -> Option<&DynInst> {
        self.slots[self.index(seq)?].as_ref()
    }

    pub(super) fn get_mut(&mut self, seq: u64) -> Option<&mut DynInst> {
        let i = self.index(seq)?;
        self.slots[i].as_mut()
    }

    /// The stage column entry, `None` when the seq is no longer in
    /// flight (retired or squashed) — callers treat that as "producer
    /// result architecturally committed".
    pub(super) fn stage(&self, seq: u64) -> Option<Stage> {
        self.stage[self.index(seq)?]
    }

    /// Sets the stage of a live instruction.
    pub(super) fn set_stage(&mut self, seq: u64, st: Stage) {
        let i = self.index(seq).expect("set_stage on reclaimed seq");
        debug_assert!(self.stage[i].is_some(), "set_stage on dead slot");
        self.stage[i] = Some(st);
    }

    pub(super) fn meta(&self, seq: u64) -> Option<&InstMeta> {
        let i = self.index(seq)?;
        self.stage[i].is_some().then(|| &self.meta[i])
    }

    pub(super) fn meta_mut(&mut self, seq: u64) -> Option<&mut InstMeta> {
        let i = self.index(seq)?;
        self.stage[i].is_some().then(|| &mut self.meta[i])
    }

    /// Removes a live instruction, returning its payload and column
    /// state, then reclaims any contiguous dead prefix so the slab
    /// tracks the in-flight window.
    pub(super) fn remove(&mut self, seq: u64) -> Option<RemovedInst> {
        let i = self.index(seq)?;
        let stage = self.stage[i].take()?;
        let di = self.slots[i].take().expect("stage/slot parity");
        let meta = self.meta[i];
        self.live -= 1;
        while let Some(None) = self.stage.front() {
            self.stage.pop_front();
            self.slots.pop_front();
            self.meta.pop_front();
            self.base += 1;
        }
        Some(RemovedInst { di, stage, meta })
    }

    /// Completion sweep: every `Exec { done <= now }` entry becomes
    /// `Done`, and its seq is appended to `completed` (the caller
    /// broadcasts wakeups). Walks the stage column contiguously.
    pub(super) fn sweep_completed(&mut self, now: u64, completed: &mut Vec<u64>) {
        for (i, st) in self.stage.iter_mut().enumerate() {
            if let Some(Stage::Exec { done }) = st {
                if *done <= now {
                    *st = Some(Stage::Done);
                    completed.push(self.base + i as u64);
                }
            }
        }
    }

    /// Live instructions in seq order. (Used by the `debug-invariants`
    /// whole-window audit.)
    #[cfg_attr(not(feature = "debug-invariants"), allow(dead_code))]
    pub(super) fn iter(&self) -> impl Iterator<Item = (u64, &DynInst)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| Some((self.base + i as u64, s.as_ref()?)))
    }

    /// Live payload/meta pairs in seq order, meta mutable (engine-tagged
    /// selective kill).
    pub(super) fn iter_meta_mut(&mut self) -> impl Iterator<Item = (&DynInst, &mut InstMeta)> {
        self.slots
            .iter()
            .zip(self.meta.iter_mut())
            .filter_map(|(s, m)| Some((s.as_ref()?, m)))
    }
}

#[cfg(test)]
mod tests {
    use super::super::PredFrom;
    use super::*;
    use phelps_isa::{ExecRecord, Inst};
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn dummy(seq: u64) -> DynInst {
        let inst = Inst::Halt;
        DynInst {
            seq,
            tid: 0,
            pc: 0x1000 + 4 * seq,
            inst,
            rec: ExecRecord {
                pc: 0x1000 + 4 * seq,
                inst,
                next_pc: 0x1004 + 4 * seq,
                taken: false,
                rd_value: 0,
                mem_addr: 0,
                store_data: 0,
            },
            predicted: None,
            default_pred: None,
            pred_from: PredFrom::None,
            mispredicted: false,
            bp_ckpt: None,
            engine_ckpt: None,
            side: None,
            result: 0,
            taken: false,
            mem_addr: 0,
            enabled: true,
            mem_done: 0,
        }
    }

    /// The lifecycle operations the pipeline performs on the slab.
    /// Indices select among the currently live seqs (mod live count).
    #[derive(Clone, Copy, Debug)]
    enum Op {
        /// Fetch: insert the next seq.
        Alloc,
        /// In-order retire: remove the oldest live seq.
        RetireFront,
        /// Loose side retire: remove an arbitrary live seq.
        RemoveAt(usize),
        /// Squash: remove every live seq >= a live pivot.
        SquashFrom(usize),
        /// Stage transitions (dispatch/issue/complete).
        SetStage(usize, u8),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            Just(Op::Alloc),
            Just(Op::RetireFront),
            (0usize..64).prop_map(Op::RemoveAt),
            (0usize..64).prop_map(Op::SquashFrom),
            (0usize..64, 0u8..4).prop_map(|(i, s)| Op::SetStage(i, s)),
        ]
    }

    fn stage_of(code: u8) -> Stage {
        match code {
            0 => Stage::Frontend,
            1 => Stage::InIq,
            2 => Stage::Exec { done: 7 },
            _ => Stage::Done,
        }
    }

    /// Picks the `i % len`-th live seq in ascending order.
    fn pick(model: &HashMap<u64, Stage>, i: usize) -> Option<u64> {
        if model.is_empty() {
            return None;
        }
        let mut seqs: Vec<u64> = model.keys().copied().collect();
        seqs.sort_unstable();
        Some(seqs[i % seqs.len()])
    }

    proptest! {
        /// Under random allocate/retire/squash interleavings the slab
        /// stays equivalent to a reference HashMap model, reclaims its
        /// dead prefix eagerly (storage bounded by the live window), and
        /// never resurrects a removed seq.
        #[test]
        fn slab_matches_hashmap_model(ops in prop::collection::vec(op(), 0..300)) {
            let mut slab = InstSlab::new();
            let mut model: HashMap<u64, Stage> = HashMap::new();
            let mut next_seq = 1u64;
            let mut removed: Vec<u64> = Vec::new();
            for op in ops {
                match op {
                    Op::Alloc => {
                        let meta = InstMeta::new(Lane::Alu, 0, 1, &Inst::Halt);
                        slab.insert(dummy(next_seq), Stage::Frontend, meta);
                        model.insert(next_seq, Stage::Frontend);
                        next_seq += 1;
                    }
                    Op::RetireFront => {
                        if let Some(&s) = model.keys().min() {
                            let r = slab.remove(s).expect("model says live");
                            prop_assert_eq!(r.di.seq, s);
                            model.remove(&s);
                            removed.push(s);
                        }
                    }
                    Op::RemoveAt(i) => {
                        if let Some(s) = pick(&model, i) {
                            let r = slab.remove(s).expect("model says live");
                            prop_assert_eq!(Some(r.stage), model.remove(&s));
                            removed.push(s);
                        }
                    }
                    Op::SquashFrom(i) => {
                        if let Some(pivot) = pick(&model, i) {
                            let doomed: Vec<u64> =
                                model.keys().copied().filter(|&s| s >= pivot).collect();
                            for s in doomed {
                                slab.remove(s).expect("model says live");
                                model.remove(&s);
                                removed.push(s);
                            }
                        }
                    }
                    Op::SetStage(i, code) => {
                        if let Some(s) = pick(&model, i) {
                            slab.set_stage(s, stage_of(code));
                            model.insert(s, stage_of(code));
                        }
                    }
                }

                // Occupancy and per-seq agreement with the model.
                prop_assert_eq!(slab.live(), model.len());
                for (&s, &st) in &model {
                    prop_assert!(slab.contains(s));
                    prop_assert_eq!(slab.get(s).map(|d| d.seq), Some(s));
                    prop_assert_eq!(slab.stage(s), Some(st));
                    prop_assert!(slab.meta(s).is_some());
                }
                for &s in &removed {
                    prop_assert!(!slab.contains(s));
                    prop_assert!(slab.get(s).is_none(), "removed seq {} resurrected", s);
                    prop_assert_eq!(slab.stage(s), None);
                    prop_assert!(slab.meta(s).is_none());
                }
                // Eager prefix reclamation: storage spans exactly
                // [oldest live, newest allocated] — empty when drained.
                prop_assert_eq!(slab.base + slab.slots.len() as u64, next_seq);
                match model.keys().min() {
                    Some(&oldest) => prop_assert_eq!(slab.base, oldest),
                    None => prop_assert_eq!(slab.slots.len(), 0),
                }
            }
        }
    }
}
