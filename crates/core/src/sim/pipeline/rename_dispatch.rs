//! Rename/dispatch stage: drains the frontend pipe in program order,
//! renames sources against the per-thread RMTs, allocates LQ/SQ/PRF
//! shares, and inserts into the shared issue queue.
//!
//! Dispatch never consults the pre-execution engine, so the whole stage
//! lives on [`SimContext`].

use super::{SimContext, Stage};
use crate::sim::types::{SideKind, NUM_THREADS};
use phelps_isa::Reg;

impl SimContext {
    pub(super) fn dispatch(&mut self) {
        for off in 0..NUM_THREADS {
            let tid = (self.thread_priority + off) % NUM_THREADS;
            if !self.threads[tid].active {
                continue;
            }
            let width = self.threads[tid].width;
            let mut dispatched = 0;
            while dispatched < width && self.threads[tid].frontend > 0 {
                let idx = self.threads[tid].rob.len() - self.threads[tid].frontend;
                let seq = self.threads[tid].rob[idx];
                let Some(di) = self.insts.get(&seq) else {
                    break;
                };
                if di.mem_done > self.cycle {
                    break; // still in the frontend pipe
                }
                // Resource checks.
                if self.iq.len() as u32 >= self.cfg.iq {
                    break;
                }
                let t = &self.threads[tid];
                let is_load = di.inst.is_load();
                let is_store = di.inst.is_store();
                let has_dst = di.inst.dst().is_some();
                if is_load && t.lq_used >= t.lq_cap {
                    break;
                }
                if is_store && t.sq_used >= t.sq_cap {
                    break;
                }
                if has_dst && t.prf_used >= t.prf_cap {
                    break;
                }
                // Rename.
                let srcs: Vec<Reg> = self.insts[&seq].inst.srcs().into_iter().collect();
                let deps: Vec<Option<u64>> = srcs
                    .iter()
                    .map(|r| {
                        if r.is_zero() {
                            None
                        } else {
                            self.threads[tid].rmt[r.index()]
                        }
                    })
                    .collect();
                let mut pred_deps = [None; 2];
                if let Some(src) = self.insts[&seq].side.as_ref().map(|s| s.pred_src) {
                    for (slot, r) in pred_deps.iter_mut().zip(src.regs()) {
                        if let Some((reg, _)) = r {
                            *slot = self.threads[tid].pred_rmt[reg as usize];
                        }
                    }
                }
                {
                    let t = &mut self.threads[tid];
                    if is_load {
                        t.lq_used += 1;
                    }
                    if is_store {
                        t.sq_used += 1;
                    }
                    if has_dst {
                        t.prf_used += 1;
                    }
                    #[cfg(feature = "debug-invariants")]
                    assert!(
                        t.lq_used <= t.lq_cap && t.sq_used <= t.sq_cap && t.prf_used <= t.prf_cap,
                        "tid {tid}: dispatch oversubscribed a partition \
                         (lq {}/{}, sq {}/{}, prf {}/{})",
                        t.lq_used,
                        t.lq_cap,
                        t.sq_used,
                        t.sq_cap,
                        t.prf_used,
                        t.prf_cap
                    );
                }
                if let Some(dst) = self.insts[&seq].inst.dst() {
                    self.threads[tid].rmt[dst.index()] = Some(seq);
                }
                if let Some(SideKind::PredProducer { dest }) =
                    self.insts[&seq].side.as_ref().map(|s| s.kind)
                {
                    self.threads[tid].pred_rmt[dest as usize] = Some(seq);
                }
                {
                    let di = self.insts.get_mut(&seq).expect("present");
                    di.deps = deps;
                    di.pred_deps = pred_deps;
                    di.stage = Stage::InIq;
                    di.mem_done = 0;
                }
                // Keep the IQ sorted ascending (issue walks it oldest
                // first). Seqs are allocated monotonically, so inserts
                // land at or near the tail; only cross-thread dispatch
                // interleaving ever shifts elements.
                match self.iq.binary_search(&seq) {
                    Err(pos) => self.iq.insert(pos, seq),
                    Ok(_) => unreachable!("seq {seq} dispatched twice"),
                }
                self.threads[tid].frontend -= 1;
                dispatched += 1;
            }
        }
    }
}
