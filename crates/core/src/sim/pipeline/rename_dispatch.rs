//! Rename/dispatch stage: drains the frontend pipe in program order,
//! renames sources against the per-thread RMTs, allocates LQ/SQ/PRF
//! shares, and inserts into the shared issue queue.
//!
//! Dispatch never consults the pre-execution engine, so the whole stage
//! lives on [`SimContext`].

use super::{SimContext, Stage, NO_DEP};
use crate::sim::types::{SideKind, NUM_THREADS};

impl SimContext {
    pub(super) fn dispatch(&mut self) {
        for off in 0..NUM_THREADS {
            let tid = (self.thread_priority + off) % NUM_THREADS;
            if !self.threads[tid].active {
                continue;
            }
            let width = self.threads[tid].width;
            let mut dispatched = 0;
            while dispatched < width && self.threads[tid].frontend > 0 {
                let idx = self.threads[tid].rob.len() - self.threads[tid].frontend;
                let seq = self.threads[tid].rob[idx];
                let Some(di) = self.insts.get(seq) else {
                    break;
                };
                if di.mem_done > self.cycle {
                    break; // still in the frontend pipe
                }
                // Resource checks.
                if self.iq.len() as u32 >= self.cfg.iq {
                    break;
                }
                let t = &self.threads[tid];
                let meta = *self.insts.meta(seq).expect("live frontend inst");
                if meta.is_load() && t.lq_used >= t.lq_cap {
                    break;
                }
                if meta.is_store() && t.sq_used >= t.sq_cap {
                    break;
                }
                if meta.has_dst() && t.prf_used >= t.prf_cap {
                    break;
                }
                // Rename: bind each source operand to its in-flight
                // producer (NO_DEP when the value is architectural).
                let srcs = di.inst.srcs();
                let dst = di.inst.dst();
                let pred_src = di.side.as_ref().map(|s| s.pred_src);
                let pred_dest = match di.side.as_ref().map(|s| s.kind) {
                    Some(SideKind::PredProducer { dest }) => Some(dest),
                    _ => None,
                };
                let mut deps = [NO_DEP; 2];
                for (slot, r) in deps.iter_mut().zip(srcs.iter()) {
                    if !r.is_zero() {
                        if let Some(p) = self.threads[tid].rmt[r.index()] {
                            *slot = p;
                        }
                    }
                }
                let mut pred_deps = [NO_DEP; 2];
                if let Some(src) = pred_src {
                    for (slot, r) in pred_deps.iter_mut().zip(src.regs()) {
                        if let Some((reg, _)) = r {
                            if let Some(p) = self.threads[tid].pred_rmt[reg as usize] {
                                *slot = p;
                            }
                        }
                    }
                }
                // Initial ready-dep count; the completion broadcast
                // decrements it as producers finish.
                let unready = deps
                    .iter()
                    .chain(pred_deps.iter())
                    .filter(|&&d| !self.dep_slot_ready(d))
                    .count() as u8;
                {
                    let t = &mut self.threads[tid];
                    if meta.is_load() {
                        t.lq_used += 1;
                    }
                    if meta.is_store() {
                        t.sq_used += 1;
                    }
                    if meta.has_dst() {
                        t.prf_used += 1;
                    }
                    #[cfg(feature = "debug-invariants")]
                    assert!(
                        t.lq_used <= t.lq_cap && t.sq_used <= t.sq_cap && t.prf_used <= t.prf_cap,
                        "tid {tid}: dispatch oversubscribed a partition \
                         (lq {}/{}, sq {}/{}, prf {}/{})",
                        t.lq_used,
                        t.lq_cap,
                        t.sq_used,
                        t.sq_cap,
                        t.prf_used,
                        t.prf_cap
                    );
                    if let Some(dst) = dst {
                        t.rmt[dst.index()] = Some(seq);
                    }
                    if let Some(dest) = pred_dest {
                        t.pred_rmt[dest as usize] = Some(seq);
                    }
                }
                {
                    let m = self.insts.meta_mut(seq).expect("live frontend inst");
                    m.deps = deps;
                    m.pred_deps = pred_deps;
                    m.unready = unready;
                }
                self.insts.set_stage(seq, Stage::InIq);
                self.insts.get_mut(seq).expect("present").mem_done = 0;
                // Keep the IQ sorted ascending (issue walks it oldest
                // first). Seqs are allocated monotonically, so inserts
                // land at or near the tail; only cross-thread dispatch
                // interleaving ever shifts elements.
                match self.iq.binary_search(&seq) {
                    Err(pos) => self.iq.insert(pos, seq),
                    Ok(_) => unreachable!("seq {seq} dispatched twice"),
                }
                self.threads[tid].frontend -= 1;
                dispatched += 1;
            }
        }
    }
}
