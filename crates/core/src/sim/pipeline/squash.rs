//! Squash machinery (main-thread replay squash, side-thread partial
//! squash, engine-tagged selective kill) and the pre-execution
//! trigger/terminate transitions that repartition the core.

use super::{Pipeline, SimContext, Stage};
use crate::sim::types::{PreExecEngine, HT_A, HT_B, MT};
use phelps_isa::{ExecRecord, NUM_REGS};
use phelps_telemetry as tlm;
use phelps_uarch::bpred::DirectionPredictor;
use phelps_uarch::config::ActiveThreads;

impl<E: PreExecEngine> Pipeline<E> {
    /// Squashes MT instructions with seq >= `from`, replaying their records.
    pub(super) fn squash_mt_from(&mut self, from: u64) {
        // The ROB is seq-sorted, so the squash set is a suffix.
        let cut = self.ctx.threads[MT].rob.partition_point(|&s| s < from);
        if cut == self.ctx.threads[MT].rob.len() {
            return;
        }
        tlm::count(tlm::Counter::MtSquashes);
        // Roll back engine consumption to the youngest surviving branch's
        // checkpoint (or to head).
        if let Some(engine) = self.engine.as_mut() {
            let ckpt = self.ctx.threads[MT]
                .rob
                .range(..cut)
                .rev()
                .find_map(|&s| self.ctx.insts.get(s).and_then(|d| d.engine_ckpt.clone()))
                .unwrap_or_default();
            engine.restore(&ckpt);
        }
        // Also rewind predictor history to the oldest squashed branch's
        // checkpoint.
        if let Some(ckpt) = self.ctx.threads[MT]
            .rob
            .range(cut..)
            .find_map(|&s| self.ctx.insts.get(s).and_then(|d| d.bp_ckpt.clone()))
        {
            self.ctx.bpred.recover(&ckpt);
        }
        let n_squashed = self.ctx.threads[MT].rob.len() - cut;
        let mut recs: Vec<ExecRecord> = Vec::with_capacity(n_squashed);
        for i in cut..self.ctx.threads[MT].rob.len() {
            let s = self.ctx.threads[MT].rob[i];
            if let Some(r) = self.ctx.insts.remove(s) {
                self.ctx.release_resources(MT, &r);
                recs.push(r.di.rec);
            }
        }
        self.ctx.threads[MT].rob.truncate(cut);
        self.ctx.threads[MT].truncate_tracked_from(from);
        self.ctx.threads[MT].frontend = 0;
        let insts = &self.ctx.insts;
        self.ctx.iq.retain(|&s| insts.contains(s));
        self.ctx.trace.push_replay_front(recs.into_iter());
        self.ctx.threads[MT].blocking_branch = None;
        self.ctx.threads[MT].fetch_stall_until = self.ctx.cycle + 1;
        #[cfg(feature = "debug-invariants")]
        {
            assert!(
                !self.ctx.insts.iter().any(|(s, d)| d.tid == MT && s >= from),
                "MT squash from {from} left a younger MT instruction in flight"
            );
            assert!(
                self.ctx.threads[MT].rmt.iter().flatten().all(|&s| s < from),
                "MT squash from {from} left a stale rename entry"
            );
        }
    }

    // ------------------------------------------------------------------
    // Trigger / terminate
    // ------------------------------------------------------------------

    /// `pc` is the retiring instruction that carried the engine command
    /// (telemetry only; 0 when unknown).
    pub(super) fn trigger_preexec(&mut self, active: ActiveThreads, pc: u64) {
        if self.ctx.preexec_active {
            return;
        }
        self.ctx.stats.triggers += 1;
        tlm::count(tlm::Counter::Triggers);
        tlm::event(tlm::EventKind::Trigger, self.ctx.cycle, pc, 0);
        self.ctx.trigger_cycle = self.ctx.cycle;
        self.ctx.preexec_active = true;
        // Squash MT in-flight (paper §V-F step 1) and repartition.
        let from = self.ctx.threads[MT].rob.front().copied();
        if let Some(f) = from {
            self.squash_mt_from(f);
        }
        self.ctx.apply_partition(active);
        self.ctx.threads[MT].waiting_mt_release = true;
        self.ctx.mt_release_pending = true;
        // Reconfiguration squash penalty.
        self.ctx.threads[MT].fetch_stall_until =
            self.ctx.cycle + self.ctx.cfg.redirect_penalty() as u64;
        for tid in [HT_A, HT_B] {
            self.ctx.threads[tid].rmt = [None; NUM_REGS];
            self.ctx.threads[tid].pred_rmt = [None; 17];
            self.ctx.threads[tid].regs = [0; NUM_REGS];
        }
    }

    pub(super) fn terminate_preexec(&mut self, pc: u64) {
        if !self.ctx.preexec_active {
            return;
        }
        self.ctx.stats.terminations += 1;
        tlm::count(tlm::Counter::Terminations);
        tlm::event(tlm::EventKind::Terminate, self.ctx.cycle, pc, 0);
        tlm::hist(
            tlm::Hist::TriggerSpanCycles,
            self.ctx.cycle.saturating_sub(self.ctx.trigger_cycle),
        );
        self.ctx.preexec_active = false;
        for tid in [HT_A, HT_B] {
            while let Some(&s) = self.ctx.threads[tid].rob.front() {
                self.ctx.threads[tid].rob.pop_front();
                if let Some(r) = self.ctx.insts.remove(s) {
                    self.ctx.release_resources(tid, &r);
                }
            }
            self.ctx.threads[tid].loads.clear();
            self.ctx.threads[tid].stores.clear();
            self.ctx.threads[tid].frontend = 0;
        }
        let insts = &self.ctx.insts;
        self.ctx.iq.retain(|&s| insts.contains(s));
        self.ctx.store_cache.clear();
        self.ctx.apply_partition(if self.ctx.partition_only {
            ActiveThreads::MainPartitioned
        } else {
            ActiveThreads::MainOnly
        });
        self.ctx.threads[MT].waiting_mt_release = false;
        self.ctx.mt_release_pending = false;
        // Reconfiguration squash penalty.
        self.ctx.threads[MT].fetch_stall_until =
            self.ctx.cycle + self.ctx.cfg.redirect_penalty() as u64;
        if let Some(engine) = self.engine.as_mut() {
            engine.on_terminated();
        }
        // Prediction-source state is gone; MT continues with the default
        // predictor.
        #[cfg(feature = "debug-invariants")]
        for tid in [HT_A, HT_B] {
            let t = &self.ctx.threads[tid];
            assert!(
                t.rob.is_empty() && t.lq_used == 0 && t.sq_used == 0 && t.prf_used == 0,
                "terminate left side thread {tid} holding resources"
            );
            // Removing every side instruction must have repaired both
            // rename maps; a surviving entry would alias the *next*
            // trigger's producers onto this epoch's squashed ones.
            assert!(
                t.rmt.iter().all(Option::is_none) && t.pred_rmt.iter().all(Option::is_none),
                "terminate left side thread {tid} with stale rename/predicate-rename entries"
            );
        }
    }
}

impl SimContext {
    /// Squashes side-thread instructions with seq >= `from`. Only ever
    /// requested by the engine itself (inner-thread visit boundaries), so
    /// the engine has already adjusted its sequencer — no notification.
    pub(super) fn squash_side_from(&mut self, tid: usize, from: u64) {
        let cut = self.threads[tid].rob.partition_point(|&s| s < from);
        for i in cut..self.threads[tid].rob.len() {
            let s = self.threads[tid].rob[i];
            if let Some(r) = self.insts.remove(s) {
                self.release_resources(tid, &r);
            }
        }
        self.threads[tid].rob.truncate(cut);
        self.threads[tid].truncate_tracked_from(from);
        let remaining_frontend = self.threads[tid]
            .rob
            .iter()
            .filter(|&&s| matches!(self.insts.stage(s), Some(Stage::Frontend)))
            .count();
        self.threads[tid].frontend = remaining_frontend;
        let insts = &self.insts;
        self.iq.retain(|&s| insts.contains(s));
    }

    /// Marks engine-tagged instructions dead (they drain without effects).
    pub(super) fn kill_tagged(&mut self, tags: &[u64]) {
        for (di, m) in self.insts.iter_meta_mut() {
            if let Some(side) = &di.side {
                if tags.contains(&side.tag) {
                    m.set_dead();
                }
            }
        }
    }
}
