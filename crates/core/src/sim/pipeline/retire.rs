//! Retire stage: in-order main-thread retirement (architectural commit,
//! predictor training, engine control commands), side-thread retirement
//! (strict or loose order, predicated store-cache commit), and resource
//! reclamation.

use super::slab::RemovedInst;
use super::{DynInst, Pipeline, PredFrom, SimContext};
use crate::classify::MispredictClass;
use crate::sim::types::{EngineCmd, ExecInfo, PreExecEngine, SideKind, HT_A, HT_B, MT};
use phelps_isa::Inst;
use phelps_telemetry as tlm;
use phelps_uarch::bpred::DirectionPredictor;
use phelps_uarch::mem::MemRequest;

use super::Stage;

impl<E: PreExecEngine> Pipeline<E> {
    pub(super) fn retire(&mut self) {
        self.retire_mt();
        if self.ctx.preexec_active {
            for tid in [HT_A, HT_B] {
                if self.ctx.threads[tid].active {
                    self.retire_side(tid);
                }
            }
        }
        // Prune: nothing needed; insts removed at retire/squash.
    }

    fn retire_mt(&mut self) {
        let width = self.ctx.threads[MT].width;
        for _ in 0..width {
            let Some(&seq) = self.ctx.threads[MT].rob.front() else {
                return;
            };
            match self.ctx.insts.stage(seq) {
                None => {
                    self.ctx.threads[MT].rob.pop_front();
                    continue;
                }
                Some(Stage::Done) => {}
                Some(_) => return,
            }
            let r = self.ctx.insts.remove(seq).expect("present");
            self.ctx.threads[MT].rob.pop_front();
            self.ctx.threads[MT].forget_tracked(seq, &r.meta);
            self.ctx.release_resources(MT, &r);
            self.finish_mt_retire(r.di);
            if self.ctx.finished {
                return;
            }
        }
    }

    fn finish_mt_retire(&mut self, di: DynInst) {
        let rec = di.rec;
        #[cfg(feature = "debug-invariants")]
        {
            assert!(
                di.seq > self.ctx.last_mt_retired_seq,
                "MT retirement out of order: seq {} after {}",
                di.seq,
                self.ctx.last_mt_retired_seq
            );
            self.ctx.last_mt_retired_seq = di.seq;
        }
        if let Some(log) = self.ctx.retire_log.as_mut() {
            log.push(rec);
        }
        self.ctx.stats.mt_retired += 1;
        tlm::count(tlm::Counter::MtRetired);

        // Timing-architectural state.
        if let Some(dst) = rec.inst.dst() {
            self.ctx.threads[MT].regs[dst.index()] = rec.rd_value;
        }
        if let Inst::Store { width, .. } = rec.inst {
            self.ctx.dbg_stores.2 += 1;
            self.ctx
                .timing_mem
                .write(rec.mem_addr, width, rec.store_data);
            self.ctx
                .hierarchy
                .request(MemRequest::store(MT, rec.pc, rec.mem_addr, self.ctx.cycle));
        }

        // Branch predictor training and statistics.
        let mut default_wrong = false;
        if di.is_cond_branch() {
            self.ctx.stats.mt_cond_branches += 1;
            tlm::count(tlm::Counter::MtCondBranches);
            let predicted = di.predicted.unwrap_or(rec.taken);
            self.ctx.bpred.update(rec.pc, rec.taken, predicted);
            default_wrong = di.default_pred.unwrap_or(rec.taken) != rec.taken;
            if di.pred_from == PredFrom::Queue {
                let e = self.ctx.queue_acc.entry(rec.pc).or_insert((0, 0));
                e.0 += 1;
                if di.mispredicted {
                    e.1 += 1;
                }
            }
            if di.mispredicted {
                self.ctx.stats.mt_mispredicts += 1;
                tlm::count(tlm::Counter::MtMispredicts);
                tlm::event(tlm::EventKind::Mispredict, self.ctx.cycle, rec.pc, 0);
                if di.pred_from == PredFrom::Queue {
                    self.ctx.stats.mispredicts_from_queue += 1;
                }
            }
            let class = match self.engine.as_mut() {
                Some(engine) => Some(engine.classify(
                    rec.pc,
                    di.pred_from == PredFrom::Queue,
                    di.mispredicted,
                    default_wrong,
                )),
                None if di.mispredicted => Some(MispredictClass::NotDelinquent),
                None => None,
            };
            match class {
                Some(MispredictClass::Eliminated) if !di.mispredicted => {
                    self.ctx.breakdown.record(MispredictClass::Eliminated);
                }
                Some(c) if di.mispredicted => self.ctx.breakdown.record(c),
                _ => {}
            }
        }

        // Engine training / control. The DBT measures the *default
        // predictor's* delinquency regardless of the consumed source.
        let mut cmd = EngineCmd::None;
        if let Some(engine) = self.engine.as_mut() {
            cmd = engine.on_mt_retire(&rec, default_wrong, self.ctx.cycle);
        }
        match cmd {
            EngineCmd::None => {}
            EngineCmd::Trigger(active) => self.trigger_preexec(active, rec.pc),
            EngineCmd::Terminate => self.terminate_preexec(rec.pc),
        }

        if matches!(rec.inst, Inst::Halt) || self.ctx.stats.mt_retired >= self.ctx.max_mt_insts {
            self.ctx.finished = true;
        }
    }

    fn retire_side(&mut self, tid: usize) {
        let loose = self.engine.as_ref().is_some_and(|e| e.loose_retire());
        let width = self.ctx.threads[tid].width.max(1);
        let mut n = 0;
        loop {
            if n >= width {
                return;
            }
            let Some(&seq) = self.ctx.threads[tid].rob.front() else {
                return;
            };
            match self.ctx.insts.stage(seq) {
                None => {
                    self.ctx.threads[tid].rob.pop_front();
                    continue;
                }
                Some(Stage::Done) => {}
                Some(_) => {
                    if loose {
                        // Loose mode: skip stalled head, retire any Done insts
                        // behind it (chains have no program-order semantics).
                        self.retire_side_loose(tid, width.saturating_sub(n) as usize);
                    }
                    return;
                }
            }
            let r = self.ctx.insts.remove(seq).expect("present");
            self.ctx.threads[tid].rob.pop_front();
            self.ctx.threads[tid].forget_tracked(seq, &r.meta);
            self.ctx.release_resources(tid, &r);
            self.finish_side_retire(tid, r);
            n += 1;
        }
    }

    fn retire_side_loose(&mut self, tid: usize, budget: usize) {
        let mut scratch = std::mem::take(&mut self.ctx.loose_scratch);
        scratch.clear();
        scratch.extend(
            self.ctx.threads[tid]
                .rob
                .iter()
                .copied()
                .filter(|&s| matches!(self.ctx.insts.stage(s), Some(Stage::Done)))
                .take(budget),
        );
        for &s in &scratch {
            let r = self.ctx.insts.remove(s).expect("present");
            self.ctx.threads[tid].forget_tracked(s, &r.meta);
            self.ctx.release_resources(tid, &r);
            self.finish_side_retire(tid, r);
        }
        if !scratch.is_empty() {
            // One retain pass over the (small, partition-capped) side ROB
            // instead of a retain per retired seq; scratch is at most the
            // retire width, so `contains` stays trivially cheap.
            self.ctx.threads[tid].rob.retain(|s| !scratch.contains(s));
        }
        self.ctx.loose_scratch = scratch;
    }

    fn finish_side_retire(&mut self, tid: usize, r: RemovedInst) {
        if r.meta.is_dead() {
            return;
        }
        let di = r.di;
        self.ctx.stats.ht_retired += 1;
        let Some(side) = di.side else { return };

        // Commit value state.
        if let Some(dst) = di.inst.dst() {
            self.ctx.threads[tid].regs[dst.index()] = di.result;
        }
        // Commit predicate values for late consumers.
        if let SideKind::PredProducer { dest } = side.kind {
            self.ctx.threads[tid].pred_vals[dest as usize] = (di.enabled, di.taken);
        }
        if di.inst.is_store() {
            if di.enabled {
                self.ctx.dbg_stores.0 += 1;
            } else {
                self.ctx.dbg_stores.1 += 1;
            }
        }
        // Stores commit to the private cache only when predicated-true.
        if di.inst.is_store() && di.enabled {
            // Merge into the containing doubleword.
            if let Inst::Store { width, .. } = di.inst {
                let dw_addr = di.mem_addr & !7;
                let base = self
                    .ctx
                    .store_cache
                    .read(dw_addr)
                    .unwrap_or_else(|| self.ctx.timing_mem.read_u64(dw_addr));
                let merged = super::lsq::merge(base, di.mem_addr, width, di.result);
                self.ctx.store_cache.write(dw_addr, merged);
            }
        }
        if side.mt_release && self.ctx.mt_release_pending {
            self.ctx.mt_release_pending = false;
            self.ctx.threads[MT].waiting_mt_release = false;
        }
        let info = ExecInfo {
            value: di.result,
            taken: di.taken,
            addr: di.mem_addr,
            enabled: di.enabled,
        };
        if let Some(engine) = self.engine.as_mut() {
            engine.side_retired(tid, &side, &info, self.ctx.cycle);
        }
    }
}

impl SimContext {
    pub(super) fn release_resources(&mut self, tid: usize, r: &RemovedInst) {
        let seq = r.di.seq;
        let t = &mut self.threads[tid];
        // LQ/SQ/PRF shares are allocated at dispatch, so a squashed
        // instruction still in the frontend pipe holds none. Releasing it
        // anyway would under-count live usage (the saturating_sub floors
        // at zero) and let later dispatch oversubscribe the partition.
        if !matches!(r.stage, Stage::Frontend) {
            if r.meta.is_load() {
                t.lq_used = t.lq_used.saturating_sub(1);
            }
            if r.meta.is_store() {
                t.sq_used = t.sq_used.saturating_sub(1);
            }
            if r.meta.has_dst() {
                t.prf_used = t.prf_used.saturating_sub(1);
            }
        }
        // Repair rename entries that point at this seq. Only the slots this
        // instruction wrote at dispatch can name it, so the repair is O(1).
        if let Some(dst) = r.di.inst.dst() {
            if t.rmt[dst.index()] == Some(seq) {
                t.rmt[dst.index()] = None;
            }
        }
        if let Some(SideKind::PredProducer { dest }) = r.di.side.as_ref().map(|s| s.kind) {
            if t.pred_rmt[dest as usize] == Some(seq) {
                t.pred_rmt[dest as usize] = None;
            }
        }
        #[cfg(feature = "debug-invariants")]
        {
            assert!(
                !t.rmt.contains(&Some(seq)),
                "tid {tid}: rename map still names released seq {seq}"
            );
            assert!(
                !t.pred_rmt.contains(&Some(seq)),
                "tid {tid}: predicate rename map still names released seq {seq}"
            );
        }
    }
}
