//! Load/store-queue machinery: store-to-load forwarding, load-store
//! ordering-violation detection (with the store-set-style predictor's
//! bookkeeping), and the doubleword extract/merge helpers shared by side
//! loads and the store cache.

use super::{Pipeline, SimContext, Stage};
use crate::sim::types::{PreExecEngine, MT};
use phelps_isa::MemWidth;
use phelps_telemetry as tlm;

impl SimContext {
    /// The youngest older executed store to the same doubleword, if any.
    /// Walks the thread's store index list (SQ-bounded), not the ROB.
    pub(super) fn forwarding_store(&self, tid: usize, seq: u64, addr: u64) -> Option<u64> {
        let t = &self.threads[tid];
        let mut best: Option<u64> = None;
        for &s in &t.stores {
            if s >= seq {
                break;
            }
            let Some(m) = self.insts.meta(s) else {
                continue;
            };
            if m.is_dead() {
                continue;
            }
            if let Some(Stage::Exec { .. } | Stage::Done) = self.insts.stage(s) {
                let di = self.insts.get(s).expect("live store");
                let saddr = if tid == MT {
                    di.rec.mem_addr
                } else {
                    di.mem_addr
                };
                if saddr >> 3 == addr >> 3 {
                    best = Some(s);
                }
            }
        }
        best
    }

    /// Whether every older in-flight store of `tid` has computed its
    /// address (issued to execute).
    pub(super) fn older_stores_resolved(&self, tid: usize, seq: u64) -> bool {
        self.threads[tid].stores.iter().all(|&s| {
            if s >= seq {
                return true;
            }
            match (self.insts.stage(s), self.insts.meta(s)) {
                (Some(st), Some(m)) if !m.is_dead() => {
                    matches!(st, Stage::Exec { .. } | Stage::Done)
                }
                _ => true,
            }
        })
    }
}

impl<E: PreExecEngine> Pipeline<E> {
    /// A store executed: any younger same-address load in this thread that
    /// already issued has a value obtained too early → violation.
    pub(super) fn check_load_violation(&mut self, tid: usize, store_seq: u64, addr: u64) {
        let victim = {
            let t = &self.ctx.threads[tid];
            // Loads list is sorted ascending; start at the first load
            // younger than the store.
            let start = t.loads.partition_point(|&s| s <= store_seq);
            t.loads.range(start..).copied().find(|&s| {
                let executed = matches!(
                    self.ctx.insts.stage(s),
                    Some(Stage::Exec { .. } | Stage::Done)
                );
                executed
                    && self.ctx.insts.meta(s).is_some_and(|m| !m.is_dead())
                    && self.ctx.insts.get(s).is_some_and(|di| {
                        (if tid == MT {
                            di.rec.mem_addr
                        } else {
                            di.mem_addr
                        }) >> 3
                            == addr >> 3
                    })
            })
        };
        if let Some(load_seq) = victim {
            self.ctx.stats.load_violations += 1;
            tlm::count(tlm::Counter::LoadViolations);
            if let Some(load) = self.ctx.insts.get(load_seq) {
                self.ctx.violating_loads.insert(load.pc);
            }
            if tid == MT {
                self.squash_mt_from(load_seq);
            }
            // Side threads issue loads conservatively (see `issue`), so a
            // side violation cannot occur; nothing to squash.
        }
    }
}

/// Extracts a `width` access at `addr` from the doubleword containing it.
pub(super) fn extract(dw: u64, addr: u64, width: MemWidth, signed: bool) -> u64 {
    let shift = 8 * (addr & 7);
    let raw = dw >> shift;
    let bits = 8 * width.bytes() as u32;
    if bits >= 64 {
        return raw;
    }
    let mask = (1u64 << bits) - 1;
    let v = raw & mask;
    if signed {
        let s = 64 - bits;
        (((v << s) as i64) >> s) as u64
    } else {
        v
    }
}

/// Merges a `width` store of `value` at `addr` into the containing
/// doubleword `dw`.
pub(super) fn merge(dw: u64, addr: u64, width: MemWidth, value: u64) -> u64 {
    let shift = 8 * (addr & 7);
    let bits = 8 * width.bytes() as u32;
    if bits >= 64 {
        return value;
    }
    let mask = ((1u64 << bits) - 1) << shift;
    (dw & !mask) | ((value << shift) & mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_and_merge_roundtrip() {
        let dw = 0x1122_3344_5566_7788u64;
        assert_eq!(extract(dw, 0x100, MemWidth::B, false), 0x88);
        assert_eq!(extract(dw, 0x101, MemWidth::B, false), 0x77);
        assert_eq!(extract(dw, 0x104, MemWidth::W, false), 0x1122_3344);
        assert_eq!(
            extract(dw, 0x104, MemWidth::W, true),
            0x1122_3344,
            "positive word"
        );
        let m = merge(dw, 0x102, MemWidth::H, 0xaabb);
        assert_eq!(extract(m, 0x102, MemWidth::H, false), 0xaabb);
        assert_eq!(
            extract(m, 0x100, MemWidth::H, false),
            0x7788,
            "neighbors kept"
        );
    }

    #[test]
    fn merge_full_doubleword_replaces() {
        assert_eq!(merge(1, 0x0, MemWidth::D, 42), 42);
    }

    #[test]
    fn extract_sign_extends_negative_byte() {
        let dw = 0x0000_0000_0000_0080u64;
        assert_eq!(extract(dw, 0x0, MemWidth::B, true), (-128i64) as u64);
    }
}
