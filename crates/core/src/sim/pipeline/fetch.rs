//! Fetch stage: main-thread trace fetch (with branch prediction and
//! prediction-queue consumption) and engine-driven side-thread fetch.

use super::{exec_latency, lane_of, DynInst, InstMeta, Pipeline, PredFrom, SimContext, Stage};
use crate::sim::types::{PreExecEngine, QueueLookup, HT_A, HT_B, MT};
use phelps_isa::{ExecRecord, Inst};
use phelps_telemetry as tlm;
use phelps_uarch::bpred::DirectionPredictor;
use phelps_uarch::mem::{AccessLevel, MemRequest};

impl<E: PreExecEngine> Pipeline<E> {
    pub(super) fn fetch(&mut self) {
        self.fetch_mt();
        if self.ctx.preexec_active {
            for tid in [HT_A, HT_B] {
                if self.ctx.threads[tid].active {
                    self.fetch_side(tid);
                }
            }
        }
    }

    fn fetch_mt(&mut self) {
        let now = self.ctx.cycle;
        {
            let t = &self.ctx.threads[MT];
            if !t.active
                || t.fetch_stall_until > now
                || t.ifetch_stall_until > now
                || t.blocking_branch.is_some()
                || t.waiting_mt_release
            {
                if t.blocking_branch.is_some() {
                    self.ctx.stats.mt_fetch_stall_mispredict += 1;
                } else if t.ifetch_stall_until > now {
                    self.ctx.stats.mt_fetch_stall_ifetch += 1;
                    tlm::count(tlm::Counter::IfetchStallCycles);
                }
                if t.waiting_mt_release {
                    self.ctx.stats.mt_fetch_stall_trigger += 1;
                }
                return;
            }
        }
        let width = self.ctx.threads[MT].width;
        // One L1I lookup per cache block entered by this fetch group; an
        // L1I hit's latency is part of the frontend pipe depth, so only
        // misses cost extra (they stall fetch until the line returns).
        let iblock_bytes = self.ctx.cfg.l1i.block_bytes.max(1);
        let mut cur_iblock: Option<u64> = None;
        // Frontend pipe occupancy backpressure: bounded by ROB partition.
        for _ in 0..width {
            if self.ctx.threads[MT].rob.len() as u32 >= self.ctx.threads[MT].rob_cap {
                break;
            }
            let Some(rec) = self.ctx.trace.next() else {
                if self.ctx.threads[MT].rob.is_empty() {
                    self.ctx.finished = true;
                }
                return;
            };
            let iblock = rec.pc / iblock_bytes;
            if cur_iblock != Some(iblock) {
                let r = self
                    .ctx
                    .hierarchy
                    .request(MemRequest::ifetch(MT, rec.pc, now));
                if r.level != AccessLevel::L1 {
                    // I-miss (or merge onto an in-flight code fill): put the
                    // record back and stall fetch until the line returns.
                    self.ctx.trace.push_replay_front(std::iter::once(rec));
                    self.ctx.threads[MT].ifetch_stall_until = r.done_cycle;
                    return;
                }
                cur_iblock = Some(iblock);
            }
            let seq = self.ctx.alloc_seq();
            let mut di = DynInst {
                seq,
                tid: MT,
                pc: rec.pc,
                inst: rec.inst,
                rec,
                predicted: None,
                default_pred: None,
                pred_from: PredFrom::None,
                mispredicted: false,
                bp_ckpt: None,
                engine_ckpt: None,
                side: None,
                result: rec.rd_value,
                taken: rec.taken,
                mem_addr: rec.mem_addr,
                enabled: true,
                mem_done: 0,
            };

            let mut stop_after = rec.inst.is_control() && rec.next_pc != rec.pc + 4;
            if di.is_cond_branch() {
                let (pred, from, default_pred) = self.predict_branch(rec.pc, rec.taken);
                di.predicted = Some(pred);
                di.default_pred = Some(default_pred);
                di.pred_from = from;
                di.bp_ckpt = Some(self.ctx.bpred.checkpoint());
                self.ctx.bpred.speculate(rec.pc, pred);
                if let Some(engine) = self.engine.as_mut() {
                    engine.on_mt_branch_fetched(rec.pc, pred);
                    di.engine_ckpt = Some(engine.checkpoint());
                }
                if pred != rec.taken {
                    di.mispredicted = true;
                    self.ctx.threads[MT].blocking_branch = Some(seq);
                    stop_after = true;
                } else {
                    stop_after = pred; // taken branches end the fetch group
                }
            }

            self.ctx.push_fetched(MT, di);
            if stop_after {
                break;
            }
            if matches!(rec.inst, Inst::Halt) {
                break;
            }
        }
    }

    /// Returns (consumed prediction, source, default-predictor prediction).
    fn predict_branch(&mut self, pc: u64, actual: bool) -> (bool, PredFrom, bool) {
        if self.ctx.mode_oracle {
            return (actual, PredFrom::Oracle, actual);
        }
        let default_pred = self.ctx.bpred.predict(pc);
        if self.ctx.preexec_active {
            if let Some(engine) = self.engine.as_mut() {
                match engine.queue_lookup(pc) {
                    QueueLookup::Hit(p) => {
                        self.ctx.stats.preds_from_queue += 1;
                        tlm::count(tlm::Counter::PredConsumeHits);
                        if p != actual && std::env::var("PHELPS_DBG").is_ok() {
                            eprintln!(
                                "[dbg] cycle={} pc={pc:#x} queue={} actual={} ckpt={:?}",
                                self.ctx.cycle,
                                p,
                                actual,
                                engine.checkpoint()
                            );
                        }
                        return (p, PredFrom::Queue, default_pred);
                    }
                    QueueLookup::Untimely => {
                        self.ctx.stats.queue_untimely += 1;
                        tlm::count(tlm::Counter::PredConsumeUntimely);
                        return (default_pred, PredFrom::Default, default_pred);
                    }
                    QueueLookup::NoRow => {}
                }
            }
        }
        (default_pred, PredFrom::Default, default_pred)
    }

    /// Side threads fetch from the helper-thread code (HTC) buffer, a
    /// dedicated structure the engine installs at trigger time — not from
    /// the L1I, so they neither miss in it nor consume its port.
    fn fetch_side(&mut self, tid: usize) {
        let width = self.ctx.threads[tid].width;
        for _ in 0..width {
            if self.ctx.threads[tid].rob.len() as u32 >= self.ctx.threads[tid].rob_cap {
                break;
            }
            let Some(engine) = self.engine.as_mut() else {
                return;
            };
            let Some(side) = engine.side_fetch(tid, self.ctx.cycle) else {
                return;
            };
            let seq = self.ctx.alloc_seq();
            let di = DynInst {
                seq,
                tid,
                pc: side.pc,
                inst: side.inst,
                rec: ExecRecord {
                    pc: side.pc,
                    inst: side.inst,
                    next_pc: side.pc + 4,
                    taken: false,
                    rd_value: 0,
                    mem_addr: 0,
                    store_data: 0,
                },
                predicted: None,
                default_pred: None,
                pred_from: PredFrom::None,
                mispredicted: false,
                bp_ckpt: None,
                engine_ckpt: None,
                side: Some(side),
                result: 0,
                taken: false,
                mem_addr: 0,
                enabled: true,
                mem_done: 0,
            };
            self.ctx.push_fetched(tid, di);
        }
    }
}

impl SimContext {
    pub(super) fn push_fetched(&mut self, tid: usize, mut di: DynInst) {
        // `mem_done` carries the frontend-pipe exit cycle until dispatch.
        di.mem_done = self.cycle + self.cfg.frontend_stages() as u64;
        let seq = di.seq;
        let meta = InstMeta::new(lane_of(&di.inst), tid, exec_latency(&di.inst), &di.inst);
        self.threads[tid].rob.push_back(seq);
        self.threads[tid].track_fetched(seq, &meta);
        self.threads[tid].frontend += 1;
        self.insts.insert(di, Stage::Frontend, meta);
        #[cfg(feature = "debug-invariants")]
        assert!(
            self.threads[tid].rob.len() as u32 <= self.threads[tid].rob_cap,
            "tid {tid}: fetch overfilled the ROB partition ({} > {})",
            self.threads[tid].rob.len(),
            self.threads[tid].rob_cap
        );
    }
}
