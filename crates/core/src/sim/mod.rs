//! The cycle-level simulator (paper §VI).
//!
//! [`simulate`] runs a prepared guest [`Cpu`] through the multi-thread
//! out-of-order [`Pipeline`] under a [`RunConfig`]: baseline, perfect
//! branch prediction, partition-only isolation (Fig. 13c), or Phelps with
//! ablation toggles (Figs. 11/12).
//!
//! The Branch Runahead baseline lives in the `phelps-runahead` crate and
//! plugs into the same pipeline through [`PreExecEngine`] via
//! [`simulate_with_engine`].
//!
//! [`simulate_corun`] co-schedules two workloads onto two cores sharing
//! one uncore (L2/L3 + ports + DRAM queue), interleaved cycle-by-cycle
//! with deterministic tenant-id arbitration, and reports per-tenant
//! results plus an interference summary against each tenant's solo run.

mod phelps_engine;
mod pipeline;
mod types;

pub use phelps_engine::PhelpsEngine;
pub use pipeline::{FinalState, Pipeline, SimResult, ThreadQuota};
pub use types::{
    EngineCkpt, EngineCmd, ExecInfo, Mode, PhelpsFeatures, PreExecEngine, QueueLookup, RunConfig,
    SideAction, SideInst, SideKind, HT_A, HT_B, MT, NUM_THREADS,
};

use phelps_isa::{Cpu, ExecRecord};
use phelps_uarch::mem::Uncore;

/// Runs `cpu` (program + initialized memory/registers) to completion under
/// `cfg` and returns the statistics bundle.
///
/// # Examples
///
/// ```
/// use phelps::sim::{simulate, Mode, RunConfig};
/// use phelps_isa::{Asm, Cpu, Reg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Asm::new(0x1000);
/// a.li(Reg::A0, 1000);
/// a.label("loop");
/// a.addi(Reg::A0, Reg::A0, -1);
/// a.bne(Reg::A0, Reg::ZERO, "loop");
/// a.halt();
/// let cpu = Cpu::new(a.assemble()?);
///
/// let mut cfg = RunConfig::scaled(Mode::Baseline);
/// cfg.max_mt_insts = 10_000;
/// let result = simulate(cpu, &cfg);
/// assert!(result.stats.ipc() > 1.0, "a trivial loop sustains IPC > 1");
/// # Ok(())
/// # }
/// ```
pub fn simulate(cpu: Cpu, cfg: &RunConfig) -> SimResult {
    build_pipeline(cpu, cfg).run()
}

/// Like [`simulate`], but with retire logging enabled: the result carries
/// the full retired main-thread record stream and the final
/// timing-architectural state ([`SimResult::retire_log`] /
/// [`SimResult::final_state`]). Differential harnesses (`phelps-verify`)
/// compare these against an independent functional-emulator run.
pub fn simulate_observed(cpu: Cpu, cfg: &RunConfig) -> SimResult {
    let mut p = build_pipeline(cpu, cfg);
    p.record_retires();
    p.run()
}

/// Like [`simulate`], but first functionally warms the branch predictor
/// and cache hierarchy from `warm` — the replayed tail of a checkpoint
/// restore (`phelps-ckpt`). An empty slice makes this identical to
/// [`simulate`], which is what the W=0 equivalence guarantee rests on.
pub fn simulate_warmed(cpu: Cpu, cfg: &RunConfig, warm: &[ExecRecord]) -> SimResult {
    let mut p = build_pipeline(cpu, cfg);
    p.warm_microarch(warm);
    p.run()
}

/// [`simulate_observed`] plus functional warming, for differential
/// harnesses exercising the checkpoint path.
pub fn simulate_observed_warmed(cpu: Cpu, cfg: &RunConfig, warm: &[ExecRecord]) -> SimResult {
    let mut p = build_pipeline(cpu, cfg);
    p.record_retires();
    p.warm_microarch(warm);
    p.run()
}

fn build_pipeline(cpu: Cpu, cfg: &RunConfig) -> Pipeline<PhelpsEngine> {
    let engine = match &cfg.mode {
        Mode::Phelps(features) => {
            let mut engine = PhelpsEngine::new(
                cfg.epoch_len,
                cfg.delinq_threshold(),
                cfg.constructor.clone(),
                *features,
            );
            let mut regs = [0u64; phelps_isa::NUM_REGS];
            for r in phelps_isa::Reg::all() {
                regs[r.index()] = cpu.reg(r);
            }
            engine.seed_mt_regs(regs);
            Some(engine)
        }
        _ => None,
    };
    Pipeline::new(cpu, cfg.core.clone(), &cfg.mode, engine, cfg.max_mt_insts)
}

/// Runs with a custom pre-execution engine (the Branch Runahead baseline).
pub fn simulate_with_engine<E: PreExecEngine>(cpu: Cpu, cfg: &RunConfig, engine: E) -> SimResult {
    Pipeline::new(
        cpu,
        cfg.core.clone(),
        &cfg.mode,
        Some(engine),
        cfg.max_mt_insts,
    )
    .run()
}

/// How one co-running tenant fared against its own solo run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TenantInterference {
    /// IPC of the same (cpu, config) run alone on the machine.
    pub solo_ipc: f64,
    /// IPC under the co-running neighbor.
    pub corun_ipc: f64,
    /// `solo_ipc / corun_ipc`: 1.0 = no interference, above 1.0 = the
    /// neighbor cost this tenant throughput.
    pub slowdown: f64,
    /// Shared (L2 + L3) port admission delay charged to this tenant.
    pub shared_port_stalls: u64,
    /// DRAM-queue admission delay charged to this tenant.
    pub dram_queue_stalls: u64,
    /// DRAM accesses issued by this tenant.
    pub dram_accesses: u64,
}

/// Result bundle of [`simulate_corun`].
#[derive(Debug)]
pub struct CorunOutcome {
    /// Per-tenant co-run results. Shared-level fields of each tenant's
    /// [`phelps_uarch::stats::SimStats`] (L2/L3 misses, shared port and
    /// DRAM-queue stalls, prefetches) hold that tenant's attributed
    /// share, so summing the two tenants reproduces the machine totals.
    pub tenants: [SimResult; 2],
    /// Each tenant's solo run of the identical (cpu, config), for the
    /// interference baseline.
    pub solo: [SimResult; 2],
    /// Per-tenant interference summary (co-run vs. solo).
    pub interference: [TenantInterference; 2],
}

/// Co-runs two workloads on two cores sharing one uncore built from
/// `cfg0.core` (tenant 0's shared-tier geometry; co-run pairs normally
/// share a [`phelps_uarch::config::CoreConfig`]).
///
/// The driver interleaves the two pipelines cycle-by-cycle in fixed
/// tenant-id order, swapping the communal [`Uncore`] into each core
/// around its step — tenant 0 always claims same-cycle shared-port and
/// DRAM-queue slots first, so arbitration (and the whole co-run) is
/// deterministic: no host threading, timing, or worker count can change
/// the outcome. When one tenant finishes, the other keeps running alone.
///
/// Each tenant's solo run executes first on its own private uncore; the
/// returned [`CorunOutcome::interference`] compares the two. Telemetry is
/// machine-wide under co-run (both cores tick one thread-local registry)
/// and is harvested into tenant 0's result; the tenant-split counters
/// (`shared_port_stalls_t0/t1`, `dram_queue_stalls_t0/t1`) carry the
/// per-tenant attribution there.
pub fn simulate_corun(cpu0: Cpu, cfg0: &RunConfig, cpu1: Cpu, cfg1: &RunConfig) -> CorunOutcome {
    let solo = [simulate(cpu0.clone(), cfg0), simulate(cpu1.clone(), cfg1)];
    let tenants = simulate_corun_pair(cpu0, cfg0, cpu1, cfg1);
    let interference = std::array::from_fn(|t| {
        let s = &tenants[t].stats;
        let solo_ipc = solo[t].stats.ipc();
        let corun_ipc = s.ipc();
        TenantInterference {
            solo_ipc,
            corun_ipc,
            slowdown: if corun_ipc > 0.0 {
                solo_ipc / corun_ipc
            } else {
                f64::INFINITY
            },
            shared_port_stalls: s.l2_port_stalls + s.l3_port_stalls,
            dram_queue_stalls: s.dram_queue_stalls,
            // Every shared-tier L3 miss goes to DRAM, so the attributed
            // L3-miss count is this tenant's DRAM traffic.
            dram_accesses: s.l3_misses,
        }
    });
    CorunOutcome {
        tenants,
        solo,
        interference,
    }
}

/// The co-run core of [`simulate_corun`]: interleaves the two pipelines
/// against one communal uncore and returns the per-tenant results (with
/// per-tenant attributed shared-level stats), without running the solo
/// baselines. Batch harnesses use this directly and obtain solo numbers
/// from their own (cached) solo cells.
pub fn simulate_corun_pair(
    cpu0: Cpu,
    cfg0: &RunConfig,
    cpu1: Cpu,
    cfg1: &RunConfig,
) -> [SimResult; 2] {
    let mut uncore = Uncore::new(&cfg0.core);
    let mut p0 = build_pipeline(cpu0, cfg0);
    let mut p1 = build_pipeline(cpu1, cfg1);
    p0.set_tenant(0);
    p1.set_tenant(1);
    let bound = p0.cycle_bound().max(p1.cycle_bound());
    let mut outer = 0u64;
    while (!p0.finished() || !p1.finished()) && outer < bound {
        // Fixed tenant-id order within the cycle = deterministic
        // same-cycle arbitration at every shared port.
        if !p0.finished() {
            p0.step_shared(&mut uncore);
        }
        if !p1.finished() {
            p1.step_shared(&mut uncore);
        }
        outer += 1;
    }
    let mut tenants = [p0.finalize(), p1.finalize()];
    for (t, r) in tenants.iter_mut().enumerate() {
        // The cores' owned uncores sat idle behind the swap, so the
        // shared-level stats flushed as zero; fill in each tenant's
        // attributed share from the communal uncore. Prefetches add onto
        // the core-private (L1-targeted) count the flush did capture.
        let ts = uncore.tenant_stats(t);
        r.stats.l2_misses = ts.l2_misses;
        r.stats.l3_misses = ts.l3_misses;
        r.stats.l2_port_stalls = ts.l2_port_stalls;
        r.stats.l3_port_stalls = ts.l3_port_stalls;
        r.stats.dram_queue_stalls = ts.dram_queue_stalls;
        r.stats.prefetches_issued += ts.prefetches_issued;
    }
    tenants
}

#[cfg(test)]
mod tests {
    use super::*;
    use phelps_isa::{Asm, Cpu, Reg};
    use phelps_uarch::stats::speedup;

    /// A predictable counted loop.
    fn counted_loop(n: i64) -> Cpu {
        let mut a = Asm::new(0x1000);
        a.li(Reg::A0, n);
        a.label("loop");
        a.addi(Reg::A0, Reg::A0, -1);
        a.bne(Reg::A0, Reg::ZERO, "loop");
        a.halt();
        Cpu::new(a.assemble().unwrap())
    }

    /// A loop with a pseudo-random data-dependent branch (delinquent).
    fn random_branch_loop(n: u64) -> Cpu {
        let mut a = Asm::new(0x1000);
        // a0 = data base, a1 = i, a2 = n, a3 = sum
        a.label("loop");
        a.slli(Reg::T0, Reg::A1, 3);
        a.add(Reg::T0, Reg::A0, Reg::T0);
        a.ld(Reg::T1, Reg::T0, 0);
        a.andi(Reg::T1, Reg::T1, 1);
        a.beq(Reg::T1, Reg::ZERO, "skip");
        a.addi(Reg::A3, Reg::A3, 7);
        a.label("skip");
        a.addi(Reg::A3, Reg::A3, 1);
        a.xor(Reg::A3, Reg::A3, Reg::A1);
        a.addi(Reg::A1, Reg::A1, 1);
        a.bne(Reg::A1, Reg::A2, "loop");
        a.halt();
        let mut cpu = Cpu::new(a.assemble().unwrap());
        let mut x = 42u64;
        for i in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            cpu.mem.write_u64(0x100000 + i * 8, x >> 33);
        }
        cpu.set_reg(Reg::A0, 0x100000);
        cpu.set_reg(Reg::A2, n);
        cpu
    }

    fn quick_cfg(mode: Mode) -> RunConfig {
        RunConfig::quick(mode, 60_000, 10_000)
    }

    #[test]
    fn baseline_runs_predictable_loop_fast() {
        let r = simulate(counted_loop(20_000), &quick_cfg(Mode::Baseline));
        assert!(r.stats.mt_retired >= 40_000);
        assert!(r.stats.ipc() > 1.5, "ipc {}", r.stats.ipc());
        assert!(r.stats.mpki() < 1.0, "mpki {}", r.stats.mpki());
    }

    #[test]
    fn random_branch_is_delinquent_in_baseline() {
        let r = simulate(random_branch_loop(20_000), &quick_cfg(Mode::Baseline));
        assert!(
            r.stats.mpki() > 20.0,
            "random branch must stay hard: mpki {}",
            r.stats.mpki()
        );
    }

    #[test]
    fn perfect_bp_beats_baseline_on_delinquent_code() {
        let base = simulate(random_branch_loop(20_000), &quick_cfg(Mode::Baseline));
        let perf = simulate(random_branch_loop(20_000), &quick_cfg(Mode::PerfectBp));
        assert_eq!(perf.stats.mt_mispredicts, 0);
        let s = speedup(&base.stats, &perf.stats);
        assert!(s > 1.2, "perfect BP speedup {s}");
    }

    #[test]
    fn partitioning_slows_the_main_thread() {
        let base = simulate(counted_loop(20_000), &quick_cfg(Mode::Baseline));
        let half = simulate(counted_loop(20_000), &quick_cfg(Mode::PartitionOnly));
        assert!(
            half.stats.ipc() <= base.stats.ipc() + 1e-9,
            "half resources cannot be faster: {} vs {}",
            half.stats.ipc(),
            base.stats.ipc()
        );
    }

    #[test]
    fn phelps_triggers_and_reduces_mpki_on_delinquent_loop() {
        let cfg_b = quick_cfg(Mode::Baseline);
        let cfg_p = quick_cfg(Mode::Phelps(PhelpsFeatures::full()));
        let base = simulate(random_branch_loop(20_000), &cfg_b);
        let ph = simulate(random_branch_loop(20_000), &cfg_p);
        assert!(ph.stats.triggers > 0, "helper thread must trigger");
        assert!(ph.stats.ht_retired > 0, "helper thread must retire work");
        assert!(
            ph.stats.preds_from_queue > 0,
            "queues must supply predictions"
        );
        assert!(
            ph.stats.mpki() < base.stats.mpki() * 0.6,
            "phelps mpki {} vs baseline {}",
            ph.stats.mpki(),
            base.stats.mpki()
        );
    }

    #[test]
    fn phelps_speeds_up_delinquent_loop() {
        let base = simulate(random_branch_loop(20_000), &quick_cfg(Mode::Baseline));
        let ph = simulate(
            random_branch_loop(20_000),
            &quick_cfg(Mode::Phelps(PhelpsFeatures::full())),
        );
        let s = speedup(&base.stats, &ph.stats);
        assert!(s > 1.05, "phelps speedup {s}");
    }

    #[test]
    fn phelps_leaves_predictable_code_alone() {
        let r = simulate(
            counted_loop(20_000),
            &quick_cfg(Mode::Phelps(PhelpsFeatures::full())),
        );
        assert_eq!(r.stats.triggers, 0, "no delinquency, no helper threads");
    }

    #[test]
    fn empty_warming_is_bit_identical_to_plain_simulate() {
        for mode in [
            Mode::Baseline,
            Mode::PerfectBp,
            Mode::PartitionOnly,
            Mode::Phelps(PhelpsFeatures::full()),
        ] {
            let cfg = quick_cfg(mode);
            let plain = simulate(random_branch_loop(10_000), &cfg);
            let warmed = simulate_warmed(random_branch_loop(10_000), &cfg, &[]);
            assert_eq!(plain.stats, warmed.stats, "mode {:?}", cfg.mode);
        }
    }

    /// A loop cycling over a small array — every pass after the first
    /// revisits resident data, so cache warming is visible.
    fn cyclic_array_loop() -> Cpu {
        let mut a = Asm::new(0x1000);
        // a0 = base, a1 = i, a3 = sum; 512 elements of 8 bytes = 4 KiB.
        a.label("loop");
        a.andi(Reg::T0, Reg::A1, 511);
        a.slli(Reg::T0, Reg::T0, 3);
        a.add(Reg::T0, Reg::A0, Reg::T0);
        a.ld(Reg::T1, Reg::T0, 0);
        a.add(Reg::A3, Reg::A3, Reg::T1);
        a.addi(Reg::A1, Reg::A1, 1);
        a.j("loop");
        let mut cpu = Cpu::new(a.assemble().unwrap());
        for i in 0..512u64 {
            cpu.mem.write_u64(0x200000 + i * 8, i * 3 + 1);
        }
        cpu.set_reg(Reg::A0, 0x200000);
        cpu
    }

    #[test]
    fn warming_trains_microarch_without_changing_retirement() {
        // Replay a full pass over the array through the functional
        // emulator, feed its records as warming, and simulate: retired
        // work is unchanged while cold-start misses disappear.
        let mut cfg = quick_cfg(Mode::Baseline);
        cfg.max_mt_insts = 20_000;
        let mut warm_src = cyclic_array_loop();
        let mut warm = Vec::new();
        for _ in 0..5_000 {
            warm.push(warm_src.step().unwrap());
        }
        let cold = simulate(warm_src.clone(), &cfg);
        let warmed = simulate_warmed(warm_src, &cfg, &warm);
        assert_eq!(cold.stats.mt_retired, warmed.stats.mt_retired);
        assert_eq!(cold.stats.mt_cond_branches, warmed.stats.mt_cond_branches);
        assert!(
            warmed.stats.l1d_misses < cold.stats.l1d_misses,
            "warming must cut cold-start L1 misses: {} vs {}",
            warmed.stats.l1d_misses,
            cold.stats.l1d_misses
        );
    }

    #[test]
    fn results_are_deterministic() {
        let cfg = quick_cfg(Mode::Phelps(PhelpsFeatures::full()));
        let a = simulate(random_branch_loop(10_000), &cfg);
        let b = simulate(random_branch_loop(10_000), &cfg);
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.stats.mt_mispredicts, b.stats.mt_mispredicts);
        assert_eq!(a.stats.ht_retired, b.stats.ht_retired);
    }

    /// A peer that issues zero shared-tier traffic: a register-only loop
    /// (no loads/stores) under `ideal_memory` (L1I disabled, so not even
    /// instruction fetches reach the uncore).
    fn silent_peer() -> (Cpu, RunConfig) {
        let mut cfg = quick_cfg(Mode::Baseline);
        cfg.core = cfg.core.clone().ideal_memory();
        (counted_loop(500), cfg)
    }

    #[test]
    fn corun_against_silent_peer_is_bit_identical_to_solo() {
        // The refactor's pin: a tenant whose neighbor issues no uncore
        // traffic must see the exact solo machine, byte for byte —
        // including through the swap-based shared stepping.
        let cfg = quick_cfg(Mode::Baseline);
        let (peer_cpu, peer_cfg) = silent_peer();
        let out = simulate_corun(random_branch_loop(10_000), &cfg, peer_cpu, &peer_cfg);
        assert_eq!(
            out.tenants[0].stats, out.solo[0].stats,
            "silent neighbor must not perturb tenant 0"
        );
        assert_eq!(out.interference[0].slowdown, 1.0);
        assert_eq!(out.interference[1].dram_accesses, 0, "peer stayed silent");
    }

    #[test]
    fn contended_corun_slows_both_tenants_and_attributes_stalls() {
        let cfg = quick_cfg(Mode::Baseline);
        let out = simulate_corun(
            random_branch_loop(10_000),
            &cfg,
            random_branch_loop(10_000),
            &cfg,
        );
        for t in 0..2 {
            let i = &out.interference[t];
            assert!(
                i.corun_ipc <= i.solo_ipc + 1e-9,
                "tenant {t} cannot speed up under contention: {} vs {}",
                i.corun_ipc,
                i.solo_ipc
            );
            assert!(i.dram_accesses > 0, "tenant {t} reached DRAM");
        }
        let stalls: u64 = out
            .interference
            .iter()
            .map(|i| i.shared_port_stalls + i.dram_queue_stalls)
            .sum();
        assert!(stalls > 0, "contention must show up in stall attribution");
        // Per-tenant shared-level stats sum to the machine totals.
        let (s0, s1) = (&out.tenants[0].stats, &out.tenants[1].stats);
        assert_eq!(
            s0.dram_queue_stalls + s1.dram_queue_stalls,
            out.interference[0].dram_queue_stalls + out.interference[1].dram_queue_stalls
        );
    }

    #[test]
    fn corun_is_deterministic() {
        let cfg_b = quick_cfg(Mode::Baseline);
        let cfg_p = quick_cfg(Mode::Phelps(PhelpsFeatures::full()));
        let a = simulate_corun(
            random_branch_loop(10_000),
            &cfg_p,
            counted_loop(20_000),
            &cfg_b,
        );
        let b = simulate_corun(
            random_branch_loop(10_000),
            &cfg_p,
            counted_loop(20_000),
            &cfg_b,
        );
        for t in 0..2 {
            assert_eq!(a.tenants[t].stats, b.tenants[t].stats, "tenant {t}");
            assert_eq!(a.solo[t].stats, b.solo[t].stats, "solo {t}");
        }
    }
}
