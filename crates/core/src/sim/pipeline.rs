//! The multi-thread out-of-order pipeline.
//!
//! One [`Pipeline`] simulates up to three hardware thread contexts:
//!
//! * the **main thread** (MT), trace-driven from the functional emulator —
//!   branch outcomes, values and addresses come from the correct-path
//!   [`ExecRecord`] stream; the timing model decides *when* things happen;
//! * up to two **side threads** (HT_A/HT_B), supplied and steered by a
//!   [`PreExecEngine`], executed with *real values* against the retire-time
//!   memory image plus the side store cache.
//!
//! Frontend width, ROB, LQ, SQ and PRF are partitioned per Table I while
//! side threads run; the issue queue and execution lanes are flexibly
//! shared. Mispredicted MT branches stall fetch until they resolve (no
//! wrong-path execution; documented in DESIGN.md); load-store ordering
//! violations squash and replay.

use crate::classify::{MispredictBreakdown, MispredictClass};
use crate::sim::types::{
    EngineCkpt, EngineCmd, ExecInfo, Mode, PreExecEngine, QueueLookup, SideAction, SideInst,
    SideKind, HT_A, HT_B, MT, NUM_THREADS,
};
use crate::storecache::StoreCache;
use phelps_isa::{Cpu, EmuError, ExecRecord, Inst, MemWidth, Memory, Reg, NUM_REGS};
use phelps_telemetry as tlm;
use phelps_uarch::bpred::{DirectionPredictor, HistoryCheckpoint, TageScL};
use phelps_uarch::config::{ActiveThreads, CoreConfig, PartitionPlan};
use phelps_uarch::mem::MemoryHierarchy;
use phelps_uarch::stats::SimStats;
use std::collections::{HashMap, VecDeque};

/// Lane class an instruction issues to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Lane {
    Alu,
    Mem,
    Complex,
}

fn lane_of(inst: &Inst) -> Lane {
    match inst {
        Inst::Load { .. } | Inst::Store { .. } => Lane::Mem,
        Inst::Alu { op, .. } | Inst::AluImm { op, .. } if op.is_complex() => Lane::Complex,
        _ => Lane::Alu,
    }
}

fn exec_latency(inst: &Inst) -> u32 {
    match inst {
        Inst::Alu { op, .. } | Inst::AluImm { op, .. } => op.latency(),
        _ => 1,
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Stage {
    /// In the frontend pipe; dispatches at the stored cycle.
    Frontend,
    /// Waiting in the issue queue.
    InIq,
    /// Executing; completes at `done`.
    Exec { done: u64 },
    /// Result available.
    Done,
}

/// Where a fetched MT prediction came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PredFrom {
    Default,
    Queue,
    Oracle,
    None,
}

#[derive(Clone, Debug)]
struct DynInst {
    seq: u64,
    tid: usize,
    pc: u64,
    inst: Inst,
    stage: Stage,
    lane: Lane,
    /// Producer seqs for register sources (parallel to `inst.srcs()`).
    deps: Vec<Option<u64>>,
    /// Producer seqs of the predicate source's registers (side threads;
    /// two slots for OR-guards, paper §V-K).
    pred_deps: [Option<u64>; 2],
    /// MT: the trace record. Side: stub filled at execute.
    rec: ExecRecord,
    /// MT conditional branches: prediction consumed at fetch.
    predicted: Option<bool>,
    /// What the default predictor said (computed even when a queue
    /// supplied the prediction — the DBT measures the core predictor's
    /// delinquency regardless of the consumed source, paper §V-B).
    default_pred: Option<bool>,
    pred_from: PredFrom,
    mispredicted: bool,
    /// Checkpoints for recovery (MT conditional branches).
    bp_ckpt: Option<HistoryCheckpoint>,
    engine_ckpt: Option<EngineCkpt>,
    /// Side-thread payload.
    side: Option<SideInst>,
    /// Execute-time results (side threads; MT copies from rec).
    result: u64,
    taken: bool,
    mem_addr: u64,
    /// Predicate evaluation result.
    enabled: bool,
    /// Load completed its memory access at this cycle.
    mem_done: u64,
    /// Squashed (dead) — drains without effects.
    dead: bool,
}

impl DynInst {
    fn is_cond_branch(&self) -> bool {
        self.inst.is_cond_branch()
    }
}

/// The correct-path instruction source for the main thread, with a replay
/// buffer for squash recovery.
#[derive(Debug)]
struct TraceSource {
    cpu: Cpu,
    replay: VecDeque<ExecRecord>,
    exhausted: bool,
}

impl TraceSource {
    fn next(&mut self) -> Option<ExecRecord> {
        if let Some(r) = self.replay.pop_front() {
            return Some(r);
        }
        if self.exhausted || self.cpu.is_halted() {
            return None;
        }
        match self.cpu.step() {
            Ok(rec) => Some(rec),
            Err(EmuError::Halted) => None,
            Err(e) => panic!("guest program fault: {e}"),
        }
    }

    fn push_replay_front(&mut self, recs: impl DoubleEndedIterator<Item = ExecRecord>) {
        for r in recs.rev() {
            self.replay.push_front(r);
        }
    }
}

#[derive(Clone, Debug)]
struct ThreadCtx {
    /// In-flight seqs in program order (frontend + ROB).
    rob: VecDeque<u64>,
    /// Seqs in the frontend pipe (prefix of `rob`).
    frontend: usize,
    /// Rename map: logical reg -> producing seq.
    rmt: [Option<u64>; NUM_REGS],
    /// Predicate rename: logical pred reg -> producing seq.
    pred_rmt: [Option<u64>; 17],
    /// Committed predicate values (enabled, taken), written at predicate
    /// producer retire; read by consumers whose producer already retired.
    pred_vals: [(bool, bool); 17],
    /// Committed (retire-time) register values. MT: the timing-architectural
    /// file used for live-in capture; side threads: their value state.
    regs: [u64; NUM_REGS],
    // Partition limits.
    width: u32,
    rob_cap: u32,
    lq_cap: u32,
    sq_cap: u32,
    prf_cap: u32,
    // Usage.
    lq_used: u32,
    sq_used: u32,
    prf_used: u32,
    /// MT fetch blocked until this cycle (mispredict resolution, trigger).
    fetch_stall_until: u64,
    /// Seq of the unresolved mispredicted branch blocking fetch.
    blocking_branch: Option<u64>,
    /// MT fetch blocked until the flagged live-in move retires.
    waiting_mt_release: bool,
    active: bool,
}

impl ThreadCtx {
    fn new() -> ThreadCtx {
        ThreadCtx {
            rob: VecDeque::new(),
            frontend: 0,
            rmt: [None; NUM_REGS],
            pred_rmt: [None; 17],
            pred_vals: [(true, false); 17],
            regs: [0; NUM_REGS],
            width: 0,
            rob_cap: 0,
            lq_cap: 0,
            sq_cap: 0,
            prf_cap: 0,
            lq_used: 0,
            sq_used: 0,
            prf_used: 0,
            fetch_stall_until: 0,
            blocking_branch: None,
            waiting_mt_release: false,
            active: false,
        }
    }
}

/// Simulation result bundle.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Counter bundle.
    pub stats: SimStats,
    /// Fig. 14 misprediction classification.
    pub breakdown: MispredictBreakdown,
    /// Harvested telemetry, when a [`phelps_telemetry`] registry was
    /// installed on this thread before the run (see `PHELPS_TRACE`).
    pub telemetry: Option<Box<tlm::Report>>,
}

/// Explicit per-thread resource quotas, overriding the Table I fractional
/// partitioning. Used by the Branch Runahead baseline, whose main thread
/// keeps the whole ROB and SQ (and, in the 12-wide configuration, full
/// baseline resources).
#[derive(Clone, Copy, Debug)]
pub struct ThreadQuota {
    /// Frontend (fetch/dispatch/retire) width.
    pub width: u32,
    /// In-flight instruction budget (ROB share or usage-counter budget).
    pub rob: u32,
    /// Load-queue share.
    pub lq: u32,
    /// Store-queue share.
    pub sq: u32,
    /// Physical-register share.
    pub prf: u32,
}

/// The pipeline. Construct via [`Pipeline::new`], then [`Pipeline::run`].
#[derive(Debug)]
pub struct Pipeline<E: PreExecEngine> {
    cfg: CoreConfig,
    mode_oracle: bool,
    partition_only: bool,
    engine: Option<E>,
    trace: TraceSource,
    bpred: TageScL,
    hierarchy: MemoryHierarchy,
    /// Retire-time memory image: MT stores applied at retire; side loads
    /// read it (plus the store cache).
    timing_mem: Memory,
    store_cache: StoreCache,
    threads: Vec<ThreadCtx>,
    insts: HashMap<u64, DynInst>,
    /// Shared issue queue: seqs.
    iq: Vec<u64>,
    next_seq: u64,
    cycle: u64,
    /// Engine-triggered state.
    preexec_active: bool,
    /// Cycle of the most recent trigger (telemetry: trigger-span hist).
    trigger_cycle: u64,
    /// Outstanding `mt_release` move.
    mt_release_pending: bool,
    max_mt_insts: u64,
    stats: SimStats,
    breakdown: MispredictBreakdown,
    thread_priority: usize,
    /// Explicit quota override: (main thread, side thread).
    quotas: Option<(ThreadQuota, ThreadQuota)>,
    /// Per-branch-PC queue accuracy: (consumed, wrong). Debug aid dumped
    /// under PHELPS_DBG at the end of a run.
    queue_acc: HashMap<u64, (u64, u64)>,
    /// Debug: (enabled, suppressed) side-store commits, and MT stores.
    dbg_stores: (u64, u64, u64),
    /// Load PCs that previously caused an ordering violation: they wait
    /// for older stores' addresses before issuing (a store-set-style
    /// memory-dependence predictor — without it, every loop-carried
    /// store→load pair would violate every iteration).
    violating_loads: std::collections::HashSet<u64>,
    /// Stop when the MT trace is fully retired.
    finished: bool,
}

impl<E: PreExecEngine> Pipeline<E> {
    /// Creates a pipeline over a prepared guest CPU (program + initialized
    /// memory + entry registers).
    pub fn new(
        cpu: Cpu,
        cfg: CoreConfig,
        mode: &Mode,
        engine: Option<E>,
        max_mt_insts: u64,
    ) -> Pipeline<E> {
        let timing_mem = cpu.mem.clone();
        let mut threads = vec![ThreadCtx::new(), ThreadCtx::new(), ThreadCtx::new()];
        threads[MT].active = true;
        let hierarchy = MemoryHierarchy::new(&cfg);
        let mut p = Pipeline {
            mode_oracle: matches!(mode, Mode::PerfectBp),
            partition_only: matches!(mode, Mode::PartitionOnly),
            engine,
            trace: TraceSource {
                cpu,
                replay: VecDeque::new(),
                exhausted: false,
            },
            bpred: TageScL::large(),
            hierarchy,
            timing_mem,
            store_cache: StoreCache::paper_default(),
            threads,
            insts: HashMap::new(),
            iq: Vec::new(),
            next_seq: 0,
            cycle: 0,
            preexec_active: false,
            trigger_cycle: 0,
            mt_release_pending: false,
            max_mt_insts,
            stats: SimStats::new(),
            breakdown: MispredictBreakdown::new(),
            thread_priority: 0,
            quotas: None,
            queue_acc: HashMap::new(),
            dbg_stores: (0, 0, 0),
            violating_loads: std::collections::HashSet::new(),
            finished: false,
            cfg,
        };
        p.apply_partition(if p.partition_only {
            ActiveThreads::MainPartitioned
        } else {
            ActiveThreads::MainOnly
        });
        p
    }

    /// Immutable view of the statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Overrides the helper-thread store-cache geometry (sets of 2 ways;
    /// paper: 16). For the design-choice ablation harness; call before
    /// [`Pipeline::run`].
    pub fn set_store_cache_sets(&mut self, sets: usize) {
        self.store_cache = StoreCache::new(sets.next_power_of_two().max(1));
    }

    /// Overrides Table I partitioning with explicit quotas: the main
    /// thread always gets `mt`; the side thread gets `side` while
    /// pre-execution is active. Call before [`Pipeline::run`].
    pub fn set_quotas(&mut self, mt: ThreadQuota, side: ThreadQuota) {
        self.quotas = Some((mt, side));
        self.apply_partition(ActiveThreads::MainOnly);
    }

    fn apply_partition(&mut self, active: ActiveThreads) {
        if let Some((mt, side)) = self.quotas {
            let set = |t: &mut ThreadCtx, q: ThreadQuota, on: bool| {
                t.width = q.width;
                t.rob_cap = q.rob;
                t.lq_cap = q.lq;
                t.sq_cap = q.sq;
                t.prf_cap = q.prf;
                t.active = on && q.width > 0;
            };
            set(&mut self.threads[MT], mt, true);
            let side_on =
                active != ActiveThreads::MainOnly && active != ActiveThreads::MainPartitioned;
            set(&mut self.threads[HT_A], side, side_on);
            set(
                &mut self.threads[HT_B],
                ThreadQuota {
                    width: 0,
                    rob: 0,
                    lq: 0,
                    sq: 0,
                    prf: 0,
                },
                false,
            );
            self.threads[MT].active = true;
            return;
        }
        let plan = PartitionPlan::for_threads(active);
        let cfg = &self.cfg;
        let set = |t: &mut ThreadCtx, eighths: u32| {
            t.width = PartitionPlan::scale(cfg.width, eighths);
            t.rob_cap = PartitionPlan::scale(cfg.rob, eighths);
            t.lq_cap = PartitionPlan::scale(cfg.lq, eighths);
            t.sq_cap = PartitionPlan::scale(cfg.sq, eighths);
            t.prf_cap = PartitionPlan::scale(cfg.prf, eighths);
            t.active = eighths > 0;
        };
        set(&mut self.threads[MT], plan.mt_eighths);
        // For MT+ITO, the single helper runs in slot HT_A with the IT share.
        if active == ActiveThreads::MainPlusIto {
            set(&mut self.threads[HT_A], plan.it_eighths);
            set(&mut self.threads[HT_B], 0);
        } else {
            set(&mut self.threads[HT_A], plan.ot_eighths);
            set(&mut self.threads[HT_B], plan.it_eighths);
        }
        self.threads[MT].active = true;
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// Runs to completion (trace exhausted or `max_mt_insts` retired) and
    /// returns the result bundle.
    pub fn run(mut self) -> SimResult {
        // Hard bound to catch livelocks in debugging scenarios.
        let cycle_bound = self.max_mt_insts.saturating_mul(64).max(1_000_000);
        while !self.finished && self.cycle < cycle_bound {
            self.step_cycle();
        }
        assert!(
            self.finished,
            "simulation did not converge within {cycle_bound} cycles (deadlock?)"
        );
        self.flush_mem_stats();
        if std::env::var("PHELPS_DBG").is_ok() {
            let mut rows: Vec<(u64, (u64, u64))> =
                self.queue_acc.iter().map(|(k, v)| (*k, *v)).collect();
            rows.sort_unstable();
            for (pc, (n, w)) in rows {
                eprintln!("[dbg] queue pc={pc:#x} consumed={n} wrong={w}");
            }
            eprintln!(
                "[dbg] stores: side enabled={} suppressed={} mt={}",
                self.dbg_stores.0, self.dbg_stores.1, self.dbg_stores.2
            );
        }
        self.stats.cycles = self.cycle;
        self.breakdown.retired = self.stats.mt_retired;
        SimResult {
            stats: self.stats,
            breakdown: self.breakdown,
            telemetry: tlm::harvest(),
        }
    }

    fn step_cycle(&mut self) {
        self.cycle += 1;
        if tlm::enabled() {
            tlm::tick(self.cycle);
            let t = &self.threads[MT];
            tlm::gauge(tlm::Gauge::RobOccupancy, t.rob.len() as u64);
            tlm::gauge(tlm::Gauge::LsqOccupancy, u64::from(t.lq_used + t.sq_used));
        }
        self.retire();
        if self.finished {
            return;
        }
        self.complete_execution();
        self.issue();
        self.dispatch();
        self.fetch();
        // Selective squash requested by the engine (BR chain rollback).
        if let Some(engine) = self.engine.as_mut() {
            let tags = engine.take_squash_tags();
            if !tags.is_empty() {
                self.kill_tagged(&tags);
            }
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn fetch(&mut self) {
        self.fetch_mt();
        if self.preexec_active {
            for tid in [HT_A, HT_B] {
                if self.threads[tid].active {
                    self.fetch_side(tid);
                }
            }
        }
    }

    fn fetch_mt(&mut self) {
        let now = self.cycle;
        {
            let t = &self.threads[MT];
            if !t.active
                || t.fetch_stall_until > now
                || t.blocking_branch.is_some()
                || t.waiting_mt_release
            {
                if t.blocking_branch.is_some() {
                    self.stats.mt_fetch_stall_mispredict += 1;
                }
                if t.waiting_mt_release {
                    self.stats.mt_fetch_stall_trigger += 1;
                }
                return;
            }
        }
        let width = self.threads[MT].width;
        // Frontend pipe occupancy backpressure: bounded by ROB partition.
        for _ in 0..width {
            if self.threads[MT].rob.len() as u32 >= self.threads[MT].rob_cap {
                break;
            }
            let Some(rec) = self.trace.next() else {
                if self.threads[MT].rob.is_empty() {
                    self.finished = true;
                }
                return;
            };
            let seq = self.alloc_seq();
            let mut di = DynInst {
                seq,
                tid: MT,
                pc: rec.pc,
                inst: rec.inst,
                stage: Stage::Frontend,
                lane: lane_of(&rec.inst),
                deps: Vec::new(),
                pred_deps: [None; 2],
                rec,
                predicted: None,
                default_pred: None,
                pred_from: PredFrom::None,
                mispredicted: false,
                bp_ckpt: None,
                engine_ckpt: None,
                side: None,
                result: rec.rd_value,
                taken: rec.taken,
                mem_addr: rec.mem_addr,
                enabled: true,
                mem_done: 0,
                dead: false,
            };

            let mut stop_after = rec.inst.is_control() && rec.next_pc != rec.pc + 4;
            if di.is_cond_branch() {
                let (pred, from, default_pred) = self.predict_branch(rec.pc, rec.taken);
                di.predicted = Some(pred);
                di.default_pred = Some(default_pred);
                di.pred_from = from;
                di.bp_ckpt = Some(self.bpred.checkpoint());
                self.bpred.speculate(rec.pc, pred);
                if let Some(engine) = self.engine.as_mut() {
                    engine.on_mt_branch_fetched(rec.pc, pred);
                    di.engine_ckpt = Some(engine.checkpoint());
                }
                if pred != rec.taken {
                    di.mispredicted = true;
                    self.threads[MT].blocking_branch = Some(seq);
                    stop_after = true;
                } else {
                    stop_after = pred; // taken branches end the fetch group
                }
            }

            self.push_fetched(MT, di);
            if stop_after {
                break;
            }
            if matches!(rec.inst, Inst::Halt) {
                break;
            }
        }
    }

    /// Returns (consumed prediction, source, default-predictor prediction).
    fn predict_branch(&mut self, pc: u64, actual: bool) -> (bool, PredFrom, bool) {
        if self.mode_oracle {
            return (actual, PredFrom::Oracle, actual);
        }
        let default_pred = self.bpred.predict(pc);
        if self.preexec_active {
            if let Some(engine) = self.engine.as_mut() {
                match engine.queue_lookup(pc) {
                    QueueLookup::Hit(p) => {
                        self.stats.preds_from_queue += 1;
                        tlm::count(tlm::Counter::PredConsumeHits);
                        if p != actual && std::env::var("PHELPS_DBG").is_ok() {
                            eprintln!(
                                "[dbg] cycle={} pc={pc:#x} queue={} actual={} ckpt={:?}",
                                self.cycle,
                                p,
                                actual,
                                engine.checkpoint()
                            );
                        }
                        return (p, PredFrom::Queue, default_pred);
                    }
                    QueueLookup::Untimely => {
                        self.stats.queue_untimely += 1;
                        tlm::count(tlm::Counter::PredConsumeUntimely);
                        return (default_pred, PredFrom::Default, default_pred);
                    }
                    QueueLookup::NoRow => {}
                }
            }
        }
        (default_pred, PredFrom::Default, default_pred)
    }

    fn fetch_side(&mut self, tid: usize) {
        let width = self.threads[tid].width;
        for _ in 0..width {
            if self.threads[tid].rob.len() as u32 >= self.threads[tid].rob_cap {
                break;
            }
            let Some(engine) = self.engine.as_mut() else {
                return;
            };
            let Some(side) = engine.side_fetch(tid, self.cycle) else {
                return;
            };
            let seq = self.alloc_seq();
            let di = DynInst {
                seq,
                tid,
                pc: side.pc,
                inst: side.inst,
                stage: Stage::Frontend,
                lane: lane_of(&side.inst),
                deps: Vec::new(),
                pred_deps: [None; 2],
                rec: ExecRecord {
                    pc: side.pc,
                    inst: side.inst,
                    next_pc: side.pc + 4,
                    taken: false,
                    rd_value: 0,
                    mem_addr: 0,
                    store_data: 0,
                },
                predicted: None,
                default_pred: None,
                pred_from: PredFrom::None,
                mispredicted: false,
                bp_ckpt: None,
                engine_ckpt: None,
                side: Some(side),
                result: 0,
                taken: false,
                mem_addr: 0,
                enabled: true,
                mem_done: 0,
                dead: false,
            };
            self.push_fetched(tid, di);
        }
    }

    fn push_fetched(&mut self, tid: usize, mut di: DynInst) {
        di.stage = Stage::Frontend;
        let ready = self.cycle + self.cfg.frontend_stages() as u64;
        // Encode dispatch-ready cycle in mem_done temporarily? No: keep a
        // side map — simpler: reuse `mem_done` field before execute.
        di.mem_done = ready;
        let seq = di.seq;
        self.threads[tid].rob.push_back(seq);
        self.threads[tid].frontend += 1;
        self.insts.insert(seq, di);
    }

    fn alloc_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    // ------------------------------------------------------------------
    // Dispatch (rename + allocate)
    // ------------------------------------------------------------------

    fn dispatch(&mut self) {
        for off in 0..NUM_THREADS {
            let tid = (self.thread_priority + off) % NUM_THREADS;
            if !self.threads[tid].active {
                continue;
            }
            let width = self.threads[tid].width;
            let mut dispatched = 0;
            while dispatched < width && self.threads[tid].frontend > 0 {
                let idx = self.threads[tid].rob.len() - self.threads[tid].frontend;
                let seq = self.threads[tid].rob[idx];
                let Some(di) = self.insts.get(&seq) else {
                    break;
                };
                if di.mem_done > self.cycle {
                    break; // still in the frontend pipe
                }
                // Resource checks.
                if self.iq.len() as u32 >= self.cfg.iq {
                    break;
                }
                let t = &self.threads[tid];
                let is_load = di.inst.is_load();
                let is_store = di.inst.is_store();
                let has_dst = di.inst.dst().is_some();
                if is_load && t.lq_used >= t.lq_cap {
                    break;
                }
                if is_store && t.sq_used >= t.sq_cap {
                    break;
                }
                if has_dst && t.prf_used >= t.prf_cap {
                    break;
                }
                // Rename.
                let srcs: Vec<Reg> = self.insts[&seq].inst.srcs().into_iter().collect();
                let deps: Vec<Option<u64>> = srcs
                    .iter()
                    .map(|r| {
                        if r.is_zero() {
                            None
                        } else {
                            self.threads[tid].rmt[r.index()]
                        }
                    })
                    .collect();
                let mut pred_deps = [None; 2];
                if let Some(src) = self.insts[&seq].side.as_ref().map(|s| s.pred_src) {
                    for (slot, r) in pred_deps.iter_mut().zip(src.regs()) {
                        if let Some((reg, _)) = r {
                            *slot = self.threads[tid].pred_rmt[reg as usize];
                        }
                    }
                }
                {
                    let t = &mut self.threads[tid];
                    if is_load {
                        t.lq_used += 1;
                    }
                    if is_store {
                        t.sq_used += 1;
                    }
                    if has_dst {
                        t.prf_used += 1;
                    }
                }
                if let Some(dst) = self.insts[&seq].inst.dst() {
                    self.threads[tid].rmt[dst.index()] = Some(seq);
                }
                if let Some(SideKind::PredProducer { dest }) =
                    self.insts[&seq].side.as_ref().map(|s| s.kind)
                {
                    self.threads[tid].pred_rmt[dest as usize] = Some(seq);
                }
                {
                    let di = self.insts.get_mut(&seq).expect("present");
                    di.deps = deps;
                    di.pred_deps = pred_deps;
                    di.stage = Stage::InIq;
                    di.mem_done = 0;
                }
                self.iq.push(seq);
                self.threads[tid].frontend -= 1;
                dispatched += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Issue & execute
    // ------------------------------------------------------------------

    fn dep_ready(&self, dep: Option<u64>) -> bool {
        match dep {
            None => true,
            Some(p) => match self.insts.get(&p) {
                None => true, // producer retired
                Some(di) => matches!(di.stage, Stage::Done),
            },
        }
    }

    fn dep_value(&self, tid: usize, reg: Reg, dep: Option<u64>) -> u64 {
        if reg.is_zero() {
            return 0;
        }
        match dep {
            Some(p) => match self.insts.get(&p) {
                Some(di) => di.result,
                None => self.threads[tid].regs[reg.index()],
            },
            None => self.threads[tid].regs[reg.index()],
        }
    }

    fn issue(&mut self) {
        let mut budget = [
            self.cfg.lanes_alu as i32,
            self.cfg.lanes_mem as i32,
            self.cfg.lanes_complex as i32,
        ];
        // Oldest-first selection.
        let mut candidates: Vec<u64> = self.iq.clone();
        candidates.sort_unstable();
        let mut issued: Vec<u64> = Vec::new();
        for seq in candidates {
            if budget.iter().all(|b| *b <= 0) {
                break;
            }
            let Some(di) = self.insts.get(&seq) else {
                issued.push(seq);
                continue;
            };
            let lane_idx = match di.lane {
                Lane::Alu => 0,
                Lane::Mem => 1,
                Lane::Complex => 2,
            };
            if budget[lane_idx] <= 0 {
                continue;
            }
            if !di.deps.iter().all(|d| self.dep_ready(*d)) {
                continue;
            }
            if !di.pred_deps.iter().all(|d| self.dep_ready(*d)) {
                continue;
            }
            if di.inst.is_load()
                && di.tid == MT
                && self.violating_loads.contains(&di.pc)
                && !self.older_stores_resolved(di.tid, seq)
            {
                // MT store-set-style predictor: loads that violated before
                // wait for older stores' addresses. Side-thread loads issue
                // freely: a side ordering race merely reads slightly stale
                // data (the helper thread is speculative anyway), and never
                // squashes — a side squash would desynchronize the engine's
                // iteration sequencing.
                continue;
            }
            budget[lane_idx] -= 1;
            issued.push(seq);
            self.execute(seq);
        }
        self.iq.retain(|s| !issued.contains(s));
        self.thread_priority = (self.thread_priority + 1) % NUM_THREADS;
    }

    fn execute(&mut self, seq: u64) {
        let di = self.insts.get(&seq).expect("issuing");
        let tid = di.tid;
        if di.dead {
            let di = self.insts.get_mut(&seq).expect("present");
            di.stage = Stage::Done;
            return;
        }
        if tid == MT {
            self.execute_mt(seq);
        } else {
            self.execute_side(seq);
        }
    }

    fn execute_mt(&mut self, seq: u64) {
        let now = self.cycle;
        let (inst, pc, addr) = {
            let di = &self.insts[&seq];
            (di.inst, di.pc, di.rec.mem_addr)
        };
        let done = if inst.is_load() {
            // Store-to-load forwarding within the thread.
            if self.forwarding_store(MT, seq, addr).is_some() {
                now + 2
            } else {
                let r = self.hierarchy.access(pc, addr, now);
                r.done_cycle
            }
        } else {
            now + exec_latency(&inst) as u64
        };
        {
            let di = self.insts.get_mut(&seq).expect("present");
            di.stage = Stage::Exec { done };
        }
        if inst.is_store() {
            self.check_load_violation(MT, seq, addr);
        }
        if inst.is_cond_branch() {
            // Resolution happens at completion; model it here with the
            // completion time (the branch redirects fetch at `done`).
            self.resolve_mt_branch(seq, done);
        }
    }

    /// The youngest older executed store to the same doubleword, if any.
    fn forwarding_store(&self, tid: usize, seq: u64, addr: u64) -> Option<u64> {
        let t = &self.threads[tid];
        let mut best: Option<u64> = None;
        for &s in &t.rob {
            if s >= seq {
                break;
            }
            let Some(di) = self.insts.get(&s) else {
                continue;
            };
            if di.dead || !di.inst.is_store() {
                continue;
            }
            if let Stage::Exec { .. } | Stage::Done = di.stage {
                let saddr = if tid == MT {
                    di.rec.mem_addr
                } else {
                    di.mem_addr
                };
                if saddr >> 3 == addr >> 3 {
                    best = Some(s);
                }
            }
        }
        best
    }

    /// A store executed: any younger same-address load in this thread that
    /// already issued has a value obtained too early → violation.
    fn check_load_violation(&mut self, tid: usize, store_seq: u64, addr: u64) {
        let victim = {
            let t = &self.threads[tid];
            t.rob.iter().copied().filter(|&s| s > store_seq).find(|&s| {
                self.insts.get(&s).is_some_and(|di| {
                    !di.dead
                        && di.inst.is_load()
                        && !matches!(di.stage, Stage::Frontend | Stage::InIq)
                        && (if tid == MT {
                            di.rec.mem_addr
                        } else {
                            di.mem_addr
                        }) >> 3
                            == addr >> 3
                })
            })
        };
        if let Some(load_seq) = victim {
            self.stats.load_violations += 1;
            tlm::count(tlm::Counter::LoadViolations);
            if let Some(load) = self.insts.get(&load_seq) {
                self.violating_loads.insert(load.pc);
            }
            if tid == MT {
                self.squash_mt_from(load_seq);
            }
            // Side threads issue loads conservatively (see `issue`), so a
            // side violation cannot occur; nothing to squash.
        }
    }

    /// Whether every older in-flight store of `tid` has computed its
    /// address (issued to execute).
    fn older_stores_resolved(&self, tid: usize, seq: u64) -> bool {
        self.threads[tid].rob.iter().all(|&s| {
            if s >= seq {
                return true;
            }
            match self.insts.get(&s) {
                Some(di) if di.inst.is_store() && !di.dead => {
                    matches!(di.stage, Stage::Exec { .. } | Stage::Done)
                }
                _ => true,
            }
        })
    }

    fn resolve_mt_branch(&mut self, seq: u64, done: u64) {
        let (mispredicted, taken, bp_ckpt, engine_ckpt, pc) = {
            let di = &self.insts[&seq];
            (
                di.mispredicted,
                di.rec.taken,
                di.bp_ckpt.clone(),
                di.engine_ckpt.clone(),
                di.pc,
            )
        };
        if !mispredicted {
            return;
        }
        // Repair speculative predictor history: rewind past the wrong
        // speculation, then insert the actual outcome.
        if let Some(ckpt) = bp_ckpt {
            self.bpred.recover(&ckpt);
            self.bpred.speculate(pc, taken);
        }
        if let (Some(engine), Some(ckpt)) = (self.engine.as_mut(), engine_ckpt.as_ref()) {
            engine.restore(ckpt);
        }
        // Fetch resumes after resolution; the refill delay is inherent in
        // the frontend-pipe depth of newly fetched instructions.
        if self.threads[MT].blocking_branch == Some(seq) {
            self.threads[MT].blocking_branch = None;
            self.threads[MT].fetch_stall_until = done + 1;
        }
    }

    fn execute_side(&mut self, seq: u64) {
        let now = self.cycle;
        let (inst, tid, side) = {
            let di = &self.insts[&seq];
            (di.inst, di.tid, di.side.expect("side inst"))
        };

        // Evaluate the predicate source against the bound producers
        // (pred-RMT binding happened at dispatch). An OR-guard (§V-K)
        // enables when either of its two sources does.
        let enabled = {
            let regs = side.pred_src.regs();
            if regs[0].is_none() {
                true // PredSource::Always
            } else {
                let deps = self.insts[&seq].pred_deps;
                let eval_one = |slot: usize| -> Option<bool> {
                    let (reg, direction) = regs[slot]?;
                    Some(match deps[slot].and_then(|p| self.insts.get(&p)) {
                        Some(prod) => prod.enabled && prod.taken == direction,
                        None => {
                            // Producer already retired: read the committed
                            // predicate file (in-order retire guarantees it
                            // holds the same iteration's value).
                            let (en, taken) = self.threads[tid].pred_vals[reg as usize];
                            en && taken == direction
                        }
                    })
                };
                eval_one(0).unwrap_or(false) || eval_one(1).unwrap_or(false)
            }
        };

        // Gather source values.
        let srcs: Vec<Reg> = inst.srcs().into_iter().collect();
        let deps = self.insts[&seq].deps.clone();
        let vals: Vec<u64> = srcs
            .iter()
            .zip(deps.iter())
            .map(|(r, d)| self.dep_value(tid, *r, *d))
            .collect();

        let mut result: u64 = 0;
        let mut taken = false;
        let mut mem_addr: u64 = 0;
        let mut done = now + exec_latency(&inst) as u64;

        match inst {
            Inst::Alu { op, .. } => result = op.eval(vals[0], vals[1]),
            Inst::AluImm { op, imm, .. } => {
                if side.kind == SideKind::LiveInMove {
                    result = side.live_in_value;
                } else {
                    result = op.eval(vals[0], imm as i64 as u64);
                }
            }
            Inst::Li { imm, .. } => {
                result = if side.kind == SideKind::LiveInMove {
                    side.live_in_value
                } else {
                    imm as u64
                };
            }
            Inst::Load {
                width,
                signed,
                offset,
                ..
            } => {
                mem_addr = vals[0].wrapping_add(offset as i64 as u64);
                // Value: in-flight forwarding > store cache > memory image.
                let fwd = self.forwarding_store(tid, seq, mem_addr);
                if let Some(fseq) = fwd {
                    let f = &self.insts[&fseq];
                    // Forward only enabled stores; a disabled store is a
                    // no-op, so fall through to older state.
                    if f.enabled {
                        result = extract(f.result, mem_addr, width, signed);
                        done = now + 2;
                    } else {
                        result = self.side_load_value(mem_addr, width, signed);
                        done = now + self.cfg.l1d.latency as u64;
                    }
                } else if let Some(dw) = self.store_cache.read(mem_addr) {
                    result = extract(dw, mem_addr, width, signed);
                    done = now + self.cfg.l1d.latency as u64;
                } else {
                    result = self.timing_mem.read(mem_addr, width, signed);
                    let r = self.hierarchy.access(side.pc, mem_addr, now);
                    done = r.done_cycle;
                }
            }
            Inst::Store { offset, .. } => {
                mem_addr = vals[0].wrapping_add(offset as i64 as u64);
                result = vals[1]; // data
            }
            Inst::Branch { cond, .. } => {
                taken = cond.eval(vals[0], vals[1]);
            }
            Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Halt => {}
        }

        if inst.is_store() {
            self.check_load_violation(tid, seq, mem_addr);
        }

        {
            let di = self.insts.get_mut(&seq).expect("present");
            di.result = result;
            di.taken = taken;
            di.mem_addr = mem_addr;
            di.enabled = enabled;
            di.stage = Stage::Exec { done };
        }

        let info = ExecInfo {
            value: result,
            taken,
            addr: mem_addr,
            enabled,
        };
        let mut action = SideAction::Continue;
        if let Some(engine) = self.engine.as_mut() {
            engine.side_executed(tid, &side, &info, now);
            if matches!(
                side.kind,
                SideKind::LoopBranch | SideKind::TerminalBranch | SideKind::HeaderBranch
            ) {
                action = engine.side_branch_resolved(tid, &side, taken);
            }
        }
        match action {
            SideAction::Continue => {}
            SideAction::SquashYounger => self.squash_side_from(tid, seq + 1, false),
            SideAction::Terminate => self.terminate_preexec(0),
        }
    }

    /// A side load's value when served by the memory image (store cache
    /// missed).
    fn side_load_value(&mut self, addr: u64, width: MemWidth, signed: bool) -> u64 {
        self.timing_mem.read(addr, width, signed)
    }

    fn complete_execution(&mut self) {
        let now = self.cycle;
        for di in self.insts.values_mut() {
            if let Stage::Exec { done } = di.stage {
                if done <= now {
                    di.stage = Stage::Done;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Retire
    // ------------------------------------------------------------------

    fn retire(&mut self) {
        self.retire_mt();
        if self.preexec_active {
            for tid in [HT_A, HT_B] {
                if self.threads[tid].active {
                    self.retire_side(tid);
                }
            }
        }
        // Prune: nothing needed; insts removed at retire/squash.
    }

    fn retire_mt(&mut self) {
        let width = self.threads[MT].width;
        for _ in 0..width {
            let Some(&seq) = self.threads[MT].rob.front() else {
                return;
            };
            let Some(di) = self.insts.get(&seq) else {
                self.threads[MT].rob.pop_front();
                continue;
            };
            if !matches!(di.stage, Stage::Done) {
                return;
            }
            let di = self.insts.remove(&seq).expect("present");
            self.threads[MT].rob.pop_front();
            self.release_resources(MT, &di);
            self.finish_mt_retire(di);
            if self.finished {
                return;
            }
        }
    }

    fn finish_mt_retire(&mut self, di: DynInst) {
        let rec = di.rec;
        self.stats.mt_retired += 1;
        tlm::count(tlm::Counter::MtRetired);

        // Timing-architectural state.
        if let Some(dst) = rec.inst.dst() {
            self.threads[MT].regs[dst.index()] = rec.rd_value;
        }
        if let Inst::Store { width, .. } = rec.inst {
            self.dbg_stores.2 += 1;
            self.timing_mem.write(rec.mem_addr, width, rec.store_data);
            self.hierarchy.store_retired(rec.mem_addr, self.cycle);
        }

        // Branch predictor training and statistics.
        let mut default_wrong = false;
        if di.is_cond_branch() {
            self.stats.mt_cond_branches += 1;
            tlm::count(tlm::Counter::MtCondBranches);
            let predicted = di.predicted.unwrap_or(rec.taken);
            self.bpred.update(rec.pc, rec.taken, predicted);
            default_wrong = di.default_pred.unwrap_or(rec.taken) != rec.taken;
            if di.pred_from == PredFrom::Queue {
                let e = self.queue_acc.entry(rec.pc).or_insert((0, 0));
                e.0 += 1;
                if di.mispredicted {
                    e.1 += 1;
                }
            }
            if di.mispredicted {
                self.stats.mt_mispredicts += 1;
                tlm::count(tlm::Counter::MtMispredicts);
                tlm::event(tlm::EventKind::Mispredict, self.cycle, rec.pc, 0);
                if di.pred_from == PredFrom::Queue {
                    self.stats.mispredicts_from_queue += 1;
                }
            }
            let class = match self.engine.as_mut() {
                Some(engine) => Some(engine.classify(
                    rec.pc,
                    di.pred_from == PredFrom::Queue,
                    di.mispredicted,
                    default_wrong,
                )),
                None if di.mispredicted => Some(MispredictClass::NotDelinquent),
                None => None,
            };
            match class {
                Some(MispredictClass::Eliminated) if !di.mispredicted => {
                    self.breakdown.record(MispredictClass::Eliminated);
                }
                Some(c) if di.mispredicted => self.breakdown.record(c),
                _ => {}
            }
        }

        // Engine training / control. The DBT measures the *default
        // predictor's* delinquency regardless of the consumed source.
        let mut cmd = EngineCmd::None;
        if let Some(engine) = self.engine.as_mut() {
            cmd = engine.on_mt_retire(&rec, default_wrong, self.cycle);
        }
        match cmd {
            EngineCmd::None => {}
            EngineCmd::Trigger(active) => self.trigger_preexec(active, rec.pc),
            EngineCmd::Terminate => self.terminate_preexec(rec.pc),
        }

        if matches!(rec.inst, Inst::Halt) || self.stats.mt_retired >= self.max_mt_insts {
            self.finished = true;
        }
    }

    fn retire_side(&mut self, tid: usize) {
        let loose = self.engine.as_ref().is_some_and(|e| e.loose_retire());
        let width = self.threads[tid].width.max(1);
        let mut n = 0;
        loop {
            if n >= width {
                return;
            }
            let Some(&seq) = self.threads[tid].rob.front() else {
                return;
            };
            let Some(di) = self.insts.get(&seq) else {
                self.threads[tid].rob.pop_front();
                continue;
            };
            if !matches!(di.stage, Stage::Done) {
                if loose {
                    // Loose mode: skip stalled head, retire any Done insts
                    // behind it (chains have no program-order semantics).
                    let done_seqs: Vec<u64> = self.threads[tid]
                        .rob
                        .iter()
                        .copied()
                        .filter(|s| {
                            self.insts
                                .get(s)
                                .is_some_and(|d| matches!(d.stage, Stage::Done))
                        })
                        .take(width.saturating_sub(n) as usize)
                        .collect();
                    if done_seqs.is_empty() {
                        return;
                    }
                    for s in done_seqs {
                        self.threads[tid].rob.retain(|&x| x != s);
                        let d = self.insts.remove(&s).expect("present");
                        self.release_resources(tid, &d);
                        self.finish_side_retire(tid, d);
                    }
                    return;
                }
                return;
            }
            let di = self.insts.remove(&seq).expect("present");
            self.threads[tid].rob.pop_front();
            self.release_resources(tid, &di);
            self.finish_side_retire(tid, di);
            n += 1;
        }
    }

    fn finish_side_retire(&mut self, tid: usize, di: DynInst) {
        if di.dead {
            return;
        }
        self.stats.ht_retired += 1;
        let Some(side) = di.side else { return };

        // Commit value state.
        if let Some(dst) = di.inst.dst() {
            self.threads[tid].regs[dst.index()] = di.result;
        }
        // Commit predicate values for late consumers.
        if let Some(SideKind::PredProducer { dest }) = side_kind_of(&di) {
            self.threads[tid].pred_vals[dest as usize] = (di.enabled, di.taken);
        }
        if di.inst.is_store() {
            if di.enabled {
                self.dbg_stores.0 += 1;
            } else {
                self.dbg_stores.1 += 1;
            }
        }
        // Stores commit to the private cache only when predicated-true.
        if di.inst.is_store() && di.enabled {
            // Merge into the containing doubleword.
            if let Inst::Store { width, .. } = di.inst {
                let dw_addr = di.mem_addr & !7;
                let base = self
                    .store_cache
                    .read(dw_addr)
                    .unwrap_or_else(|| self.timing_mem.read_u64(dw_addr));
                let merged = merge(base, di.mem_addr, width, di.result);
                self.store_cache.write(dw_addr, merged);
            }
        }
        if side.mt_release && self.mt_release_pending {
            self.mt_release_pending = false;
            self.threads[MT].waiting_mt_release = false;
        }
        let info = ExecInfo {
            value: di.result,
            taken: di.taken,
            addr: di.mem_addr,
            enabled: di.enabled,
        };
        if let Some(engine) = self.engine.as_mut() {
            engine.side_retired(tid, &side, &info, self.cycle);
        }
    }

    fn release_resources(&mut self, tid: usize, di: &DynInst) {
        let t = &mut self.threads[tid];
        if di.inst.is_load() {
            t.lq_used = t.lq_used.saturating_sub(1);
        }
        if di.inst.is_store() {
            t.sq_used = t.sq_used.saturating_sub(1);
        }
        if di.inst.dst().is_some() {
            t.prf_used = t.prf_used.saturating_sub(1);
        }
        // Repair RMT entries that point at this seq.
        for slot in t.rmt.iter_mut() {
            if *slot == Some(di.seq) {
                *slot = None;
            }
        }
        for slot in t.pred_rmt.iter_mut() {
            if *slot == Some(di.seq) {
                *slot = None;
            }
        }
    }

    // ------------------------------------------------------------------
    // Squash machinery
    // ------------------------------------------------------------------

    /// Squashes MT instructions with seq >= `from`, replaying their records.
    fn squash_mt_from(&mut self, from: u64) {
        let squashed: Vec<u64> = self.threads[MT]
            .rob
            .iter()
            .copied()
            .filter(|&s| s >= from)
            .collect();
        if squashed.is_empty() {
            return;
        }
        tlm::count(tlm::Counter::MtSquashes);
        // Roll back engine consumption to the youngest surviving branch's
        // checkpoint (or to head).
        if let Some(engine) = self.engine.as_mut() {
            let ckpt = self.threads[MT]
                .rob
                .iter()
                .copied()
                .filter(|&s| s < from)
                .rev()
                .find_map(|s| self.insts.get(&s).and_then(|d| d.engine_ckpt.clone()))
                .unwrap_or_default();
            engine.restore(&ckpt);
        }
        // Also rewind predictor history to the oldest squashed branch's
        // checkpoint.
        if let Some(ckpt) = squashed
            .iter()
            .find_map(|s| self.insts.get(s).and_then(|d| d.bp_ckpt.clone()))
        {
            self.bpred.recover(&ckpt);
        }
        let mut recs: Vec<ExecRecord> = Vec::with_capacity(squashed.len());
        for s in &squashed {
            if let Some(di) = self.insts.remove(s) {
                self.release_resources(MT, &di);
                recs.push(di.rec);
            }
        }
        self.threads[MT].rob.retain(|s| *s < from);
        self.threads[MT].frontend = 0;
        self.iq.retain(|s| self.insts.contains_key(s));
        self.trace.push_replay_front(recs.into_iter());
        self.threads[MT].blocking_branch = None;
        self.threads[MT].fetch_stall_until = self.cycle + 1;
    }

    /// Squashes side-thread instructions with seq >= `from`. When
    /// `notify_engine` is false the engine initiated the squash and has
    /// already adjusted its sequencer.
    fn squash_side_from(&mut self, tid: usize, from: u64, _notify_engine: bool) {
        let squashed: Vec<u64> = self.threads[tid]
            .rob
            .iter()
            .copied()
            .filter(|&s| s >= from)
            .collect();
        for s in &squashed {
            if let Some(di) = self.insts.remove(s) {
                self.release_resources(tid, &di);
            }
        }
        self.threads[tid].rob.retain(|s| *s < from);
        let remaining_frontend = self.threads[tid]
            .rob
            .iter()
            .filter(|s| {
                self.insts
                    .get(s)
                    .is_some_and(|d| matches!(d.stage, Stage::Frontend))
            })
            .count();
        self.threads[tid].frontend = remaining_frontend;
        self.iq.retain(|s| self.insts.contains_key(s));
    }

    /// Marks engine-tagged instructions dead (they drain without effects).
    fn kill_tagged(&mut self, tags: &[u64]) {
        for di in self.insts.values_mut() {
            if let Some(side) = &di.side {
                if tags.contains(&side.tag) {
                    di.dead = true;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Trigger / terminate
    // ------------------------------------------------------------------

    /// `pc` is the retiring instruction that carried the engine command
    /// (telemetry only; 0 when unknown).
    fn trigger_preexec(&mut self, active: ActiveThreads, pc: u64) {
        if self.preexec_active {
            return;
        }
        self.stats.triggers += 1;
        tlm::count(tlm::Counter::Triggers);
        tlm::event(tlm::EventKind::Trigger, self.cycle, pc, 0);
        self.trigger_cycle = self.cycle;
        self.preexec_active = true;
        // Squash MT in-flight (paper §V-F step 1) and repartition.
        let from = self.threads[MT].rob.front().copied();
        if let Some(f) = from {
            self.squash_mt_from(f);
        }
        self.apply_partition(active);
        self.threads[MT].waiting_mt_release = true;
        self.mt_release_pending = true;
        // Reconfiguration squash penalty.
        self.threads[MT].fetch_stall_until = self.cycle + self.cfg.redirect_penalty() as u64;
        for tid in [HT_A, HT_B] {
            self.threads[tid].rmt = [None; NUM_REGS];
            self.threads[tid].pred_rmt = [None; 17];
            self.threads[tid].regs = [0; NUM_REGS];
        }
    }

    fn terminate_preexec(&mut self, pc: u64) {
        if !self.preexec_active {
            return;
        }
        self.stats.terminations += 1;
        tlm::count(tlm::Counter::Terminations);
        tlm::event(tlm::EventKind::Terminate, self.cycle, pc, 0);
        tlm::hist(
            tlm::Hist::TriggerSpanCycles,
            self.cycle.saturating_sub(self.trigger_cycle),
        );
        self.preexec_active = false;
        for tid in [HT_A, HT_B] {
            let all: Vec<u64> = self.threads[tid].rob.iter().copied().collect();
            for s in all {
                if let Some(di) = self.insts.remove(&s) {
                    self.release_resources(tid, &di);
                }
            }
            self.threads[tid].rob.clear();
            self.threads[tid].frontend = 0;
        }
        self.iq.retain(|s| self.insts.contains_key(s));
        self.store_cache.clear();
        self.apply_partition(if self.partition_only {
            ActiveThreads::MainPartitioned
        } else {
            ActiveThreads::MainOnly
        });
        self.threads[MT].waiting_mt_release = false;
        self.mt_release_pending = false;
        // Reconfiguration squash penalty.
        self.threads[MT].fetch_stall_until = self.cycle + self.cfg.redirect_penalty() as u64;
        if let Some(engine) = self.engine.as_mut() {
            engine.on_terminated();
        }
        // Prediction-source state is gone; MT continues with the default
        // predictor.
    }

    /// Memory hierarchy statistics flush into the stat bundle.
    pub fn flush_mem_stats(&mut self) {
        let (acc, miss, pf_hits) = self.hierarchy.l1d_stats();
        self.stats.l1d_accesses = acc;
        self.stats.l1d_misses = miss;
        self.stats.prefetch_hits = pf_hits;
        self.stats.l2_misses = self.hierarchy.l2_misses();
        self.stats.l3_misses = self.hierarchy.l3_misses();
        self.stats.prefetches_issued = self.hierarchy.prefetches_issued;
    }
}

fn side_kind_of(di: &DynInst) -> Option<SideKind> {
    di.side.as_ref().map(|s| s.kind)
}

/// Extracts a `width` access at `addr` from the doubleword containing it.
fn extract(dw: u64, addr: u64, width: MemWidth, signed: bool) -> u64 {
    let shift = 8 * (addr & 7);
    let raw = dw >> shift;
    let bits = 8 * width.bytes() as u32;
    if bits >= 64 {
        return raw;
    }
    let mask = (1u64 << bits) - 1;
    let v = raw & mask;
    if signed {
        let s = 64 - bits;
        (((v << s) as i64) >> s) as u64
    } else {
        v
    }
}

/// Merges a `width` store of `value` at `addr` into the containing
/// doubleword `dw`.
fn merge(dw: u64, addr: u64, width: MemWidth, value: u64) -> u64 {
    let shift = 8 * (addr & 7);
    let bits = 8 * width.bytes() as u32;
    if bits >= 64 {
        return value;
    }
    let mask = ((1u64 << bits) - 1) << shift;
    (dw & !mask) | ((value << shift) & mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_and_merge_roundtrip() {
        let dw = 0x1122_3344_5566_7788u64;
        assert_eq!(extract(dw, 0x100, MemWidth::B, false), 0x88);
        assert_eq!(extract(dw, 0x101, MemWidth::B, false), 0x77);
        assert_eq!(extract(dw, 0x104, MemWidth::W, false), 0x1122_3344);
        assert_eq!(
            extract(dw, 0x104, MemWidth::W, true),
            0x1122_3344,
            "positive word"
        );
        let m = merge(dw, 0x102, MemWidth::H, 0xaabb);
        assert_eq!(extract(m, 0x102, MemWidth::H, false), 0xaabb);
        assert_eq!(
            extract(m, 0x100, MemWidth::H, false),
            0x7788,
            "neighbors kept"
        );
    }

    #[test]
    fn merge_full_doubleword_replaces() {
        assert_eq!(merge(1, 0x0, MemWidth::D, 42), 42);
    }

    #[test]
    fn extract_sign_extends_negative_byte() {
        let dw = 0x0000_0000_0000_0080u64;
        assert_eq!(extract(dw, 0x0, MemWidth::B, true), (-128i64) as u64);
    }
}
