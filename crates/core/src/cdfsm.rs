//! Control-Dependency Finite State Machine matrix (paper §V-D, Figs. 7–8).
//!
//! The CDFSM matrix learns, for each delinquent branch and each included
//! store in the loop (rows), its *immediate guarding branch* among the
//! loop's delinquent branches (columns), and in which direction of the
//! guard the row instruction lies.
//!
//! Each matrix element is a 2-bit FSM:
//!
//! * `Init` — no evidence yet;
//! * `CdT` / `CdNt` — row appears immediately control-dependent on the
//!   column branch, on its taken / not-taken path;
//! * `Ci` — the row has been observed on **both** sides of the column
//!   branch, hence is control-independent of it; when walking the branch
//!   list, the row looks *past* CI columns to the next earlier branch.
//!
//! Training is driven by a per-iteration **branch list**: delinquent
//! branches and directions retired so far this iteration. When a row
//! instruction retires, it walks the branch list backwards from the most
//! recent entry, skipping columns in `Ci`, and trains the first non-CI
//! column it finds. The list clears when the loop branch retires.

/// State of one row×column FSM.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum CdState {
    /// No training yet.
    #[default]
    Init,
    /// Control-dependent, taken direction.
    CdT,
    /// Control-dependent, not-taken direction.
    CdNt,
    /// Control-independent.
    Ci,
}

/// Resolved immediate guard of a row, after training.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Guard {
    /// Column index of the immediate guarding branch.
    pub column: usize,
    /// Direction of the guard that *enables* the row instruction.
    pub direction: bool,
}

/// The CDFSM matrix plus its branch list.
///
/// Rows and columns are dense indices assigned by the caller (the
/// helper-thread constructor keeps the PC↔row conversion table).
///
/// # Examples
///
/// ```
/// use phelps::cdfsm::CdfsmMatrix;
///
/// // One guarding branch (column 0) and a store (row 1) on its not-taken
/// // path; row 0 is the branch itself.
/// let mut m = CdfsmMatrix::new(2, 1);
/// for _ in 0..2 {
///     // Iteration where the branch is not-taken and the store retires:
///     m.on_branch_retire(0, 0, false);
///     m.on_row_retire(1);
///     m.on_loop_branch_retire();
///     // Iteration where the branch is taken (store skipped):
///     m.on_branch_retire(0, 0, true);
///     m.on_loop_branch_retire();
/// }
/// let g = m.immediate_guard(1).unwrap();
/// assert_eq!(g.column, 0);
/// assert_eq!(g.direction, false);
/// assert_eq!(m.immediate_guard(0), None, "the branch itself is unguarded");
/// ```
#[derive(Clone, Debug)]
pub struct CdfsmMatrix {
    /// `fsm[row][col]`.
    fsm: Vec<Vec<CdState>>,
    /// Branches retired this iteration: (column, taken).
    branch_list: Vec<(usize, bool)>,
}

impl CdfsmMatrix {
    /// Creates a matrix with `rows` row instructions (delinquent branches
    /// and included stores) and `cols` delinquent-branch columns.
    pub fn new(rows: usize, cols: usize) -> CdfsmMatrix {
        CdfsmMatrix {
            fsm: vec![vec![CdState::Init; cols]; rows],
            branch_list: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.fsm.len()
    }

    /// Raw state of one element (exposed for tests and diagnostics).
    pub fn state(&self, row: usize, col: usize) -> CdState {
        self.fsm[row][col]
    }

    /// The current branch list (column, direction) pairs, oldest first.
    pub fn branch_list(&self) -> &[(usize, bool)] {
        &self.branch_list
    }

    /// Trains `row` against the branch list: walk backwards, skip CI
    /// columns, and update the first live column.
    fn train_row(&mut self, row: usize) {
        for &(col, taken) in self.branch_list.iter().rev() {
            match self.fsm[row][col] {
                CdState::Ci => continue, // look past: control-independent
                CdState::Init => {
                    self.fsm[row][col] = if taken { CdState::CdT } else { CdState::CdNt };
                    return;
                }
                CdState::CdT => {
                    if !taken {
                        // Seen on both sides: control-independent. The row
                        // must train an earlier branch in future iterations.
                        self.fsm[row][col] = CdState::Ci;
                    }
                    return;
                }
                CdState::CdNt => {
                    if taken {
                        self.fsm[row][col] = CdState::Ci;
                    }
                    return;
                }
            }
        }
        // Empty (or fully-CI) list: the row is unguarded so far; nothing to
        // train (all its FSMs stay Init/Ci).
    }

    /// A delinquent branch retired: train its row (as a guarded
    /// instruction), then append it to the branch list (as a potential
    /// guard of later rows).
    pub fn on_branch_retire(&mut self, row: usize, col: usize, taken: bool) {
        self.train_row(row);
        self.branch_list.push((col, taken));
    }

    /// An included store (or other non-branch row instruction) retired.
    pub fn on_row_retire(&mut self, row: usize) {
        self.train_row(row);
    }

    /// The loop branch retired: a new iteration begins, clearing the
    /// branch list.
    pub fn on_loop_branch_retire(&mut self) {
        self.branch_list.clear();
    }

    /// The learned immediate guard of `row`, or `None` when the row is
    /// unguarded (all FSMs idle or CI).
    pub fn immediate_guard(&self, row: usize) -> Option<Guard> {
        // After training, at most one column should remain in a CD state
        // for a simple guard; with OR-guards (paper §V-K) several can —
        // we return the first and expose `cd_columns` for diagnostics.
        self.fsm[row]
            .iter()
            .enumerate()
            .find_map(|(col, s)| match s {
                CdState::CdT => Some(Guard {
                    column: col,
                    direction: true,
                }),
                CdState::CdNt => Some(Guard {
                    column: col,
                    direction: false,
                }),
                _ => None,
            })
    }

    /// All columns still in a CD state for `row` — more than one indicates
    /// the OR-guard scenario the paper omits (§V-K).
    pub fn cd_columns(&self, row: usize) -> Vec<usize> {
        self.fsm[row]
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, CdState::CdT | CdState::CdNt))
            .map(|(c, _)| c)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replays the paper's Fig. 8 example verbatim: br1 (row/col 0), br2
    /// (row/col 1), br3 (row/col 2), st (row 3); br1 guards br2 and br3 on
    /// its not-taken path; br3 guards st on its not-taken path; br3 is
    /// control-independent of br2.
    #[test]
    fn fig8_five_iterations() {
        let mut m = CdfsmMatrix::new(4, 3);

        // Iteration 1: br1 nt, br2 t, br3 nt, st.
        m.on_branch_retire(0, 0, false);
        m.on_branch_retire(1, 1, true);
        m.on_branch_retire(2, 2, false);
        m.on_row_retire(3);
        // Paper Fig. 8b: row br2/col br1 = CD_NT; row br3/col br2 = CD_T;
        // row st/col br3 = CD_NT.
        assert_eq!(m.state(1, 0), CdState::CdNt);
        assert_eq!(m.state(2, 1), CdState::CdT);
        assert_eq!(m.state(3, 2), CdState::CdNt);
        m.on_loop_branch_retire();

        // Iteration 2: br1 nt, br2 nt, br3 nt, st.
        m.on_branch_retire(0, 0, false);
        m.on_branch_retire(1, 1, false);
        m.on_branch_retire(2, 2, false);
        m.on_row_retire(3);
        // Fig. 8c: br3 has now seen br2 in both directions → CI.
        assert_eq!(m.state(2, 1), CdState::Ci);
        m.on_loop_branch_retire();

        // Iteration 3: same path as iteration 1.
        m.on_branch_retire(0, 0, false);
        m.on_branch_retire(1, 1, true);
        m.on_branch_retire(2, 2, false);
        m.on_row_retire(3);
        // Fig. 8d: br3 looks past br2 (CI) and trains br1 → CD_NT.
        assert_eq!(m.state(2, 0), CdState::CdNt);
        m.on_loop_branch_retire();

        // Iteration 4: br1 nt, br2 nt, br3 t (st skipped).
        m.on_branch_retire(0, 0, false);
        m.on_branch_retire(1, 1, false);
        m.on_branch_retire(2, 2, true);
        m.on_loop_branch_retire();

        // Iteration 5: br1 t (everything else skipped).
        m.on_branch_retire(0, 0, true);
        m.on_loop_branch_retire();

        // Final state (paper's conclusions):
        // (1) br1 unguarded.
        assert_eq!(m.immediate_guard(0), None);
        // (2) br1 immediately guards br2 and br3, not-taken direction.
        assert_eq!(
            m.immediate_guard(1),
            Some(Guard {
                column: 0,
                direction: false
            })
        );
        assert_eq!(
            m.immediate_guard(2),
            Some(Guard {
                column: 0,
                direction: false
            })
        );
        // (3) br3 immediately guards st, not-taken direction.
        assert_eq!(
            m.immediate_guard(3),
            Some(Guard {
                column: 2,
                direction: false
            })
        );
    }

    #[test]
    fn unguarded_branch_stays_unguarded() {
        let mut m = CdfsmMatrix::new(2, 2);
        for _ in 0..10 {
            m.on_branch_retire(0, 0, true);
            m.on_branch_retire(1, 1, false);
            m.on_loop_branch_retire();
        }
        // Row 1 always sees row 0 taken just before it... so it looks CD_T
        // until it observes the other side.
        assert_eq!(m.state(1, 0), CdState::CdT);
        let mut m2 = CdfsmMatrix::new(2, 2);
        for i in 0..10 {
            m2.on_branch_retire(0, 0, i % 2 == 0);
            m2.on_branch_retire(1, 1, false);
            m2.on_loop_branch_retire();
        }
        assert_eq!(m2.state(1, 0), CdState::Ci, "both sides observed");
        assert_eq!(m2.immediate_guard(1), None);
    }

    #[test]
    fn branch_list_clears_each_iteration() {
        let mut m = CdfsmMatrix::new(2, 2);
        m.on_branch_retire(0, 0, true);
        assert_eq!(m.branch_list().len(), 1);
        m.on_loop_branch_retire();
        assert!(m.branch_list().is_empty());
        // Row 1 retires first in the next iteration: empty list, no training.
        m.on_row_retire(1);
        assert_eq!(m.state(1, 0), CdState::Init);
    }

    #[test]
    fn nested_guard_chain() {
        // b1 guards b2 (nt), b2 guards st (t): two-level nesting like
        // astar's b1→b2→s1.
        let mut m = CdfsmMatrix::new(3, 2);
        // Path A: b1 nt, b2 t, st.
        m.on_branch_retire(0, 0, false);
        m.on_branch_retire(1, 1, true);
        m.on_row_retire(2);
        m.on_loop_branch_retire();
        // Path B: b1 nt, b2 nt (st skipped).
        m.on_branch_retire(0, 0, false);
        m.on_branch_retire(1, 1, false);
        m.on_loop_branch_retire();
        // Path C: b1 t (both skipped).
        m.on_branch_retire(0, 0, true);
        m.on_loop_branch_retire();

        assert_eq!(
            m.immediate_guard(1),
            Some(Guard {
                column: 0,
                direction: false
            })
        );
        assert_eq!(
            m.immediate_guard(2),
            Some(Guard {
                column: 1,
                direction: true
            })
        );
    }

    #[test]
    fn or_guard_scenario_detectable() {
        // A store reachable from two different guards (if (a || b) st) can
        // leave multiple CD columns; `cd_columns` exposes this.
        let mut m = CdfsmMatrix::new(3, 2);
        // Path 1: b1 t → st retires right after b1.
        m.on_branch_retire(0, 0, true);
        m.on_row_retire(2);
        m.on_loop_branch_retire();
        // Path 2: b1 nt, b2 t → st retires after b2.
        m.on_branch_retire(0, 0, false);
        m.on_branch_retire(1, 1, true);
        m.on_row_retire(2);
        m.on_loop_branch_retire();
        let cols = m.cd_columns(2);
        assert!(!cols.is_empty());
    }

    #[test]
    fn ci_is_terminal_for_training_purposes() {
        let mut m = CdfsmMatrix::new(2, 1);
        // Drive row 1's FSM on column 0 to CI, then observe more paths:
        // it must never leave CI (a 2-bit FSM with CI absorbing).
        m.on_branch_retire(0, 0, true);
        m.on_row_retire(1);
        m.on_loop_branch_retire();
        m.on_branch_retire(0, 0, false);
        m.on_row_retire(1);
        m.on_loop_branch_retire();
        assert_eq!(m.state(1, 0), CdState::Ci);
        for taken in [true, false, true, true, false] {
            m.on_branch_retire(0, 0, taken);
            m.on_row_retire(1);
            m.on_loop_branch_retire();
        }
        assert_eq!(m.state(1, 0), CdState::Ci);
    }
}
