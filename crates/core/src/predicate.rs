//! Predicate registers (paper §V-H).
//!
//! Each predicate register is 2 bits:
//!
//! * **msb** — whether the producing predicate producer was itself
//!   predicated-true (enabled) or predicated-false (suppressed);
//! * **lsb** — the taken/not-taken outcome of the predicate producer.
//!
//! A consumer with enabling direction `d` is predicated-true iff
//! `msb == 1 && lsb == d`. `pred0` is reserved and always reads as
//! "enabled, taken" with a wildcard direction semantics handled by
//! [`PredSource::Always`].

/// A 2-bit predicate register value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PredValue {
    /// Producer was itself enabled (predicated-true).
    pub enabled: bool,
    /// Producer's taken/not-taken outcome.
    pub taken: bool,
}

impl PredValue {
    /// Whether a consumer whose enabling direction is `direction` is
    /// predicated-true by this value.
    pub fn enables(self, direction: bool) -> bool {
        self.enabled && self.taken == direction
    }
}

/// A predicate source operand of a store or predicate producer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PredSource {
    /// `pred0`: unconditional execution (no immediate guard).
    Always,
    /// Guarded: logical predicate register `reg` with enabling `direction`.
    Guarded {
        /// Logical predicate register index (1-based; 0 is reserved).
        reg: u8,
        /// Direction of the guard that enables the consumer.
        direction: bool,
    },
    /// OR-guarded (paper §V-K): two predicate sources whose evaluations
    /// are ORed — the `if (a || b)` scenario, detectable as multiple CD
    /// states in a CDFSM row.
    GuardedOr {
        /// First `(register, enabling direction)` source.
        a: (u8, bool),
        /// Second `(register, enabling direction)` source.
        b: (u8, bool),
    },
}

impl PredSource {
    /// Evaluates this source given a lookup of logical predicate registers.
    ///
    /// Returns whether the consumer is predicated-true. For
    /// [`PredSource::Always`] this is always `true`; the lookup is not
    /// consulted.
    pub fn evaluate(self, lookup: impl Fn(u8) -> PredValue) -> bool {
        match self {
            PredSource::Always => true,
            PredSource::Guarded { reg, direction } => lookup(reg).enables(direction),
            PredSource::GuardedOr { a, b } => lookup(a.0).enables(a.1) || lookup(b.0).enables(b.1),
        }
    }

    /// The logical predicate registers this source reads (0, 1 or 2).
    pub fn regs(self) -> [Option<(u8, bool)>; 2] {
        match self {
            PredSource::Always => [None, None],
            PredSource::Guarded { reg, direction } => [Some((reg, direction)), None],
            PredSource::GuardedOr { a, b } => [Some(a), Some(b)],
        }
    }
}

/// A logical-predicate-register file for one helper thread, with rename-free
/// per-iteration semantics: the helper thread writes each `predN` exactly
/// once per iteration (by its unique producer) before any consumer reads it,
/// so the simulator models the pred-PRF as a direct-mapped array that is
/// re-written each iteration. (The hardware renames; see DESIGN.md.)
#[derive(Clone, Debug)]
pub struct PredFile {
    regs: Vec<PredValue>,
}

impl PredFile {
    /// Creates a predicate file with `n` logical registers (`pred0` is
    /// implicit and not stored).
    pub fn new(n: usize) -> PredFile {
        PredFile {
            regs: vec![
                PredValue {
                    enabled: true,
                    taken: false
                };
                n
            ],
        }
    }

    /// Writes `predN` (`reg >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `reg` is 0 (reserved) or out of range.
    pub fn write(&mut self, reg: u8, value: PredValue) {
        assert!(reg >= 1, "pred0 is reserved");
        self.regs[(reg - 1) as usize] = value;
    }

    /// Reads `predN` (`reg >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `reg` is 0 (reserved) or out of range.
    pub fn read(&self, reg: u8) -> PredValue {
        assert!(reg >= 1, "pred0 is reserved");
        self.regs[(reg - 1) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_table() {
        // Consumer enabled iff producer enabled and outcome matches its
        // enabling direction.
        for enabled in [false, true] {
            for taken in [false, true] {
                for dir in [false, true] {
                    let v = PredValue { enabled, taken };
                    assert_eq!(v.enables(dir), enabled && taken == dir);
                }
            }
        }
    }

    #[test]
    fn pred0_always_enables() {
        let panicky = |_r: u8| -> PredValue { panic!("pred0 must not read the file") };
        assert!(PredSource::Always.evaluate(panicky));
    }

    #[test]
    fn guarded_source_reads_register() {
        let mut f = PredFile::new(8);
        f.write(
            3,
            PredValue {
                enabled: true,
                taken: false,
            },
        );
        let src = PredSource::Guarded {
            reg: 3,
            direction: false,
        };
        assert!(src.evaluate(|r| f.read(r)));
        let src = PredSource::Guarded {
            reg: 3,
            direction: true,
        };
        assert!(!src.evaluate(|r| f.read(r)));
    }

    #[test]
    fn transitive_suppression() {
        // astar's s1: guarded by b2, which is guarded by b1. When b1's
        // outcome suppresses b2, b2's value has enabled=false and s1 is
        // suppressed regardless of b2's own outcome bit.
        let mut f = PredFile::new(8);
        // b1 (pred1): unguarded, taken (suppressing b2 whose dir is NT).
        f.write(
            1,
            PredValue {
                enabled: true,
                taken: true,
            },
        );
        // b2 (pred2): its own predicate source is {pred1, dir=false} →
        // disabled; its outcome bit is whatever it computed.
        let b2_enabled = PredSource::Guarded {
            reg: 1,
            direction: false,
        }
        .evaluate(|r| f.read(r));
        f.write(
            2,
            PredValue {
                enabled: b2_enabled,
                taken: true,
            },
        );
        // s1 guarded by b2 taken: must be suppressed because b2 is disabled.
        let s1 = PredSource::Guarded {
            reg: 2,
            direction: true,
        };
        assert!(!s1.evaluate(|r| f.read(r)));
    }

    #[test]
    fn or_guard_enables_on_either_source() {
        let mut f = PredFile::new(8);
        f.write(
            1,
            PredValue {
                enabled: true,
                taken: true,
            },
        );
        f.write(
            2,
            PredValue {
                enabled: true,
                taken: false,
            },
        );
        let src = PredSource::GuardedOr {
            a: (1, false), // disabled by pred1 (taken, needs NT)
            b: (2, false), // enabled by pred2 (not-taken)
        };
        assert!(src.evaluate(|r| f.read(r)));
        let src = PredSource::GuardedOr {
            a: (1, false),
            b: (2, true),
        };
        assert!(!src.evaluate(|r| f.read(r)), "neither source enables");
        let src = PredSource::GuardedOr {
            a: (1, true),
            b: (2, true),
        };
        assert!(src.evaluate(|r| f.read(r)), "first source enables");
    }

    #[test]
    fn regs_enumerates_sources() {
        assert_eq!(PredSource::Always.regs(), [None, None]);
        assert_eq!(
            PredSource::Guarded {
                reg: 3,
                direction: true
            }
            .regs(),
            [Some((3, true)), None]
        );
        assert_eq!(
            PredSource::GuardedOr {
                a: (1, false),
                b: (2, true)
            }
            .regs(),
            [Some((1, false)), Some((2, true))]
        );
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn pred0_write_rejected() {
        let mut f = PredFile::new(4);
        f.write(
            0,
            PredValue {
                enabled: true,
                taken: true,
            },
        );
    }
}
