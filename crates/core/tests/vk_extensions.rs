//! Tests of the paper's §V-K "explored but omitted" scenarios, which this
//! reproduction implements as opt-in extensions:
//!
//! * **OR-guards** — a store reachable on either of two guard directions
//!   gets a two-source ORed predicate operand;
//! * **alternate producers** — a control-independent consumer whose source
//!   has path-dependent producers marks the loop ineligible (conservative
//!   protection instead of silent straight-line clobbering).

use phelps::construct::{ConstructionTarget, Constructor, ConstructorConfig, Ineligibility};
use phelps::delinq::LoopBounds;
use phelps::htc::HtKind;
use phelps::predicate::PredSource;
use phelps_isa::{Asm, Cpu, Reg};

/// `if (a || b) store` — the store retires directly after whichever guard
/// passed, so its CDFSM row keeps CD states on both columns.
fn or_guard_kernel() -> (Cpu, Vec<u64>, u64, LoopBounds) {
    let mut a = Asm::new(0x1000);
    a.label("loop");
    a.slli(Reg::T0, Reg::A1, 3);
    a.add(Reg::T0, Reg::A0, Reg::T0);
    a.ld(Reg::T1, Reg::T0, 0);
    a.andi(Reg::T2, Reg::T1, 1);
    let b1 = a.here();
    a.bne(Reg::T2, Reg::ZERO, "body"); // guard a: taken -> body
    a.srli(Reg::T3, Reg::T1, 1);
    a.andi(Reg::T3, Reg::T3, 1);
    let b2 = a.here();
    a.beq(Reg::T3, Reg::ZERO, "skip"); // guard b: not-taken -> skip
    a.label("body");
    a.xori(Reg::T4, Reg::T1, 5);
    let st = a.here();
    a.sd(Reg::T4, Reg::T0, 8); // store to the *next* element: a
                               // loop-carried conflict with b1's load,
                               // guarded by the OR of both guards
    a.label("skip");
    // Non-slice filler so the 75% bound passes.
    a.add(Reg::S8, Reg::S8, Reg::A1);
    a.xor(Reg::S9, Reg::S9, Reg::S8);
    a.slli(Reg::S10, Reg::S8, 2);
    a.add(Reg::S11, Reg::S11, Reg::S10);
    a.or(Reg::S9, Reg::S9, Reg::S11);
    a.add(Reg::S8, Reg::S8, Reg::S10);
    a.addi(Reg::A1, Reg::A1, 1);
    let lb = a.here();
    a.bne(Reg::A1, Reg::A2, "loop");
    a.halt();
    let bounds = LoopBounds {
        branch_pc: lb,
        target_pc: 0x1000,
    };
    let mut cpu = Cpu::new(a.assemble().unwrap());
    let mut x = 3u64;
    for i in 0..4000u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        cpu.mem.write_u64(0x100000 + i * 8, x >> 33);
    }
    cpu.set_reg(Reg::A0, 0x100000);
    cpu.set_reg(Reg::A2, 4000);
    (cpu, vec![b1, b2], st, bounds)
}

#[test]
fn or_guarded_store_gets_two_sources() {
    let (mut cpu, branches, st, bounds) = or_guard_kernel();
    let mut c = Constructor::new(ConstructionTarget {
        bounds,
        inner: None,
        delinquent: branches.clone(),
    });
    while !cpu.is_halted() {
        c.on_retire(&cpu.step().unwrap());
    }
    let entry = c.finalize(1).expect("eligible");
    let store = entry
        .inner
        .insts
        .iter()
        .find(|i| i.pc == st)
        .expect("store captured via the store-detect queue");
    assert_eq!(store.kind, HtKind::Store);
    match store.pred_src {
        PredSource::GuardedOr { a, b } => {
            // The store executes when b1 is taken OR b2 is not-taken
            // (b2 taken jumps to "skip"), so the recorded enable
            // directions must be taken for guard a and not-taken for b.
            assert!(a.1 && !b.1, "guard directions: {a:?} {b:?}");
            assert_ne!(a.0, b.0, "two distinct predicate registers");
        }
        other => panic!("expected an OR-guard, got {other:?}"),
    }
}

#[test]
fn or_guard_disabled_falls_back_to_single_guard() {
    let (mut cpu, branches, st, bounds) = or_guard_kernel();
    let mut c = Constructor::with_config(
        ConstructionTarget {
            bounds,
            inner: None,
            delinquent: branches,
        },
        ConstructorConfig {
            or_guards: false,
            ..ConstructorConfig::default()
        },
    );
    while !cpu.is_halted() {
        c.on_retire(&cpu.step().unwrap());
    }
    let entry = c.finalize(1).expect("eligible");
    let store = entry
        .inner
        .insts
        .iter()
        .find(|i| i.pc == st)
        .expect("store");
    assert!(
        matches!(store.pred_src, PredSource::Guarded { .. }),
        "paper-evaluated configuration keeps one guard: {:?}",
        store.pred_src
    );
}

/// A consumer whose source register has two different in-loop producers
/// depending on an earlier branch: the alternate-producer hazard.
fn alternate_producer_kernel() -> (Cpu, Vec<u64>, LoopBounds) {
    let mut a = Asm::new(0x1000);
    a.label("loop");
    a.slli(Reg::T0, Reg::A1, 3);
    a.add(Reg::T0, Reg::A0, Reg::T0);
    a.ld(Reg::T1, Reg::T0, 0);
    a.andi(Reg::T2, Reg::T1, 1);
    let b1 = a.here();
    a.beq(Reg::T2, Reg::ZERO, "alt"); // delinquent
    a.addi(Reg::T3, Reg::T1, 7); // producer A of t3
    a.j("join");
    a.label("alt");
    a.slli(Reg::T3, Reg::T1, 2); // producer B of t3
    a.label("join");
    // Control-independent consumer of t3 feeding a second delinquent
    // branch: its value depends on which producer ran.
    a.andi(Reg::T4, Reg::T3, 3);
    let b2 = a.here();
    a.bne(Reg::T4, Reg::ZERO, "skip"); // delinquent, alternate-fed
    a.addi(Reg::A3, Reg::A3, 1);
    a.label("skip");
    a.add(Reg::S8, Reg::S8, Reg::A1);
    a.xor(Reg::S9, Reg::S9, Reg::S8);
    a.slli(Reg::S10, Reg::S8, 2);
    a.add(Reg::S11, Reg::S11, Reg::S10);
    a.addi(Reg::A1, Reg::A1, 1);
    let lb = a.here();
    a.bne(Reg::A1, Reg::A2, "loop");
    a.halt();
    let bounds = LoopBounds {
        branch_pc: lb,
        target_pc: 0x1000,
    };
    let mut cpu = Cpu::new(a.assemble().unwrap());
    let mut x = 17u64;
    for i in 0..4000u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        cpu.mem.write_u64(0x100000 + i * 8, x >> 33);
    }
    cpu.set_reg(Reg::A0, 0x100000);
    cpu.set_reg(Reg::A2, 4000);
    (cpu, vec![b1, b2], bounds)
}

#[test]
fn alternate_producers_detected_and_rejected() {
    let (mut cpu, branches, bounds) = alternate_producer_kernel();
    let mut c = Constructor::new(ConstructionTarget {
        bounds,
        inner: None,
        delinquent: branches,
    });
    while !cpu.is_halted() {
        c.on_retire(&cpu.step().unwrap());
    }
    assert_eq!(
        c.finalize(1).unwrap_err(),
        Ineligibility::AlternateProducers
    );
}

#[test]
fn alternate_producer_rejection_can_be_disabled() {
    let (mut cpu, branches, bounds) = alternate_producer_kernel();
    let mut c = Constructor::with_config(
        ConstructionTarget {
            bounds,
            inner: None,
            delinquent: branches,
        },
        ConstructorConfig {
            reject_alternate_producers: false,
            ..ConstructorConfig::default()
        },
    );
    while !cpu.is_halted() {
        c.on_retire(&cpu.step().unwrap());
    }
    assert!(c.finalize(1).is_ok(), "opt-out reproduces the raw behavior");
}
