//! Property tests on the Phelps mechanisms: prediction-queue pointer
//! algebra under random operation sequences, CDFSM lattice invariants, and
//! the helper-thread store cache.

use phelps::cdfsm::{CdState, CdfsmMatrix};
use phelps::predq::PredictionQueues;
use phelps::storecache::StoreCache;
use proptest::prelude::*;

/// Operations the three prediction-queue pointers can experience.
#[derive(Clone, Copy, Debug)]
enum QueueOp {
    Deposit(bool),
    AdvanceTail,
    AdvanceSpecHead,
    RetireLoopBranch,
    Rollback,
}

fn queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        any::<bool>().prop_map(QueueOp::Deposit),
        Just(QueueOp::AdvanceTail),
        Just(QueueOp::AdvanceSpecHead),
        Just(QueueOp::RetireLoopBranch),
        Just(QueueOp::Rollback),
    ]
}

proptest! {
    /// Pointer invariants hold under any operation sequence:
    /// head <= spec_head, tail never runs more than capacity past head,
    /// and no operation panics.
    #[test]
    fn prediction_queue_pointer_invariants(ops in prop::collection::vec(queue_op(), 0..400)) {
        let mut q = PredictionQueues::new(&[0x10, 0x14], 8);
        let mut ckpt = 0u64;
        for op in ops {
            match op {
                QueueOp::Deposit(t) => {
                    let _ = q.deposit(0x10, t);
                    let _ = q.deposit(0x14, !t);
                }
                QueueOp::AdvanceTail => {
                    let _ = q.advance_tail();
                }
                QueueOp::AdvanceSpecHead => {
                    ckpt = q.spec_head();
                    q.advance_spec_head();
                }
                QueueOp::RetireLoopBranch => {
                    if q.head() < q.spec_head() {
                        q.advance_head();
                    }
                }
                QueueOp::Rollback => q.rollback_spec_head(ckpt),
            }
            prop_assert!(q.head() <= q.spec_head(), "head <= spec_head");
            prop_assert!(
                q.tail().saturating_sub(q.head()) <= 8,
                "tail within capacity of head"
            );
            // Consumption never panics in any state.
            let _ = q.consume(0x10);
            let _ = q.consume(0x14);
        }
    }

    /// Deposited outcomes are returned verbatim when consumed in lockstep.
    #[test]
    fn prediction_queue_preserves_outcomes(outcomes in prop::collection::vec(any::<bool>(), 1..64)) {
        let mut q = PredictionQueues::new(&[0x20], 4);
        let mut consumed = Vec::new();
        for &t in &outcomes {
            // HT deposits one iteration, MT consumes it.
            prop_assert!(q.deposit(0x20, t));
            prop_assert!(q.advance_tail());
            consumed.push(q.consume(0x20).expect("deposited"));
            q.advance_spec_head();
            q.advance_head();
        }
        prop_assert_eq!(consumed, outcomes);
    }

    /// The CDFSM never leaves the 4-state lattice and CI is absorbing.
    #[test]
    fn cdfsm_ci_is_absorbing(dirs in prop::collection::vec(any::<bool>(), 0..200)) {
        let mut m = CdfsmMatrix::new(2, 1);
        // Drive row 1 to CI (observe both directions of branch 0).
        m.on_branch_retire(0, 0, true);
        m.on_row_retire(1);
        m.on_loop_branch_retire();
        m.on_branch_retire(0, 0, false);
        m.on_row_retire(1);
        m.on_loop_branch_retire();
        prop_assert_eq!(m.state(1, 0), CdState::Ci);
        for d in dirs {
            m.on_branch_retire(0, 0, d);
            m.on_row_retire(1);
            m.on_loop_branch_retire();
            prop_assert_eq!(m.state(1, 0), CdState::Ci, "CI absorbs");
        }
    }

    /// A row that only ever appears on one side of its guard stays CD in
    /// that direction, no matter how many iterations are observed.
    #[test]
    fn cdfsm_stable_guard_never_degrades(n in 1usize..100) {
        let mut m = CdfsmMatrix::new(2, 1);
        for i in 0..n {
            let taken = i % 3 == 0;
            m.on_branch_retire(0, 0, taken);
            if !taken {
                m.on_row_retire(1); // row 1 exists only on the NT path
            }
            m.on_loop_branch_retire();
        }
        let s = m.state(1, 0);
        prop_assert!(
            s == CdState::CdNt || s == CdState::Init,
            "guard direction never flips: {s:?}"
        );
    }

    /// Store cache: a read returns the most recent write to that
    /// doubleword or nothing — never another address's data.
    #[test]
    fn store_cache_returns_own_data(writes in prop::collection::vec((0u64..4096, any::<u64>()), 1..200)) {
        let mut sc = StoreCache::paper_default();
        let mut model = std::collections::HashMap::new();
        for (dw, val) in &writes {
            sc.write(dw * 8, *val);
            model.insert(*dw, *val);
        }
        for (dw, _) in &writes {
            if let Some(got) = sc.read(dw * 8) {
                prop_assert_eq!(got, model[dw], "hit returns the latest write");
            }
            // A miss is always legal: evicted data is simply lost.
        }
    }

    /// Store-cache capacity: at most 32 doublewords survive.
    #[test]
    fn store_cache_capacity_bound(dws in prop::collection::vec(0u64..10_000, 1..300)) {
        let mut sc = StoreCache::paper_default();
        for dw in &dws {
            sc.write(dw * 8, *dw);
        }
        let mut distinct: Vec<u64> = dws.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let resident = distinct
            .iter()
            .filter(|dw| sc.read(**dw * 8).is_some())
            .count();
        prop_assert!(resident <= 32, "at most 32 DWs resident: {resident}");
    }
}
