//! Fuzz-style property tests of the full simulator: randomly generated
//! guest programs (straight-line bodies inside a counted loop, with
//! data-dependent branches, loads and stores) must simulate to completion
//! under every mode, retiring exactly the instructions the functional
//! emulator retires.

use phelps::sim::{simulate, Mode, PhelpsFeatures, RunConfig};
use phelps_isa::{AluOp, Asm, BranchCond, Cpu, Reg};
use proptest::prelude::*;

/// One random instruction of the loop body.
#[derive(Clone, Copy, Debug)]
enum BodyOp {
    Alu(u8, u8, u8, u8), // op selector, rd, rs1, rs2
    AluImm(u8, u8, u8, i32),
    Load(u8, u8),       // rd, index-reg selector
    Store(u8, u8),      // src, index-reg selector
    Branch(u8, u8, u8), // cond selector, rs1, rs2 (skips one instruction)
}

fn body_op() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        (0u8..6, 0u8..6, 0u8..6, 0u8..6).prop_map(|(o, d, a, b)| BodyOp::Alu(o, d, a, b)),
        (0u8..6, 0u8..6, 0u8..6, -64i32..64).prop_map(|(o, d, a, i)| BodyOp::AluImm(o, d, a, i)),
        (0u8..6, 0u8..2).prop_map(|(d, x)| BodyOp::Load(d, x)),
        (0u8..6, 0u8..2).prop_map(|(s, x)| BodyOp::Store(s, x)),
        (0u8..4, 0u8..6, 0u8..6).prop_map(|(c, a, b)| BodyOp::Branch(c, a, b)),
    ]
}

/// Scratch registers the generator draws from (never the loop controls).
const SCRATCH: [Reg; 6] = [Reg::T0, Reg::T1, Reg::T2, Reg::T3, Reg::A3, Reg::A4];
const ALU_OPS: [AluOp; 6] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Xor,
    AluOp::Or,
    AluOp::And,
    AluOp::Mul,
];
const CONDS: [BranchCond; 4] = [
    BranchCond::Eq,
    BranchCond::Ne,
    BranchCond::Lt,
    BranchCond::Geu,
];

/// Builds a runnable program: `iters` iterations of the random body.
/// Loads/stores are confined to a small scratch array indexed by masked
/// registers, so every access is in-bounds.
fn build(ops: &[BodyOp], iters: u32) -> Cpu {
    let mut a = Asm::new(0x1000);
    // a0 = scratch base; a1 = i; a2 = n.
    a.label("loop");
    for (k, op) in ops.iter().enumerate() {
        match *op {
            BodyOp::Alu(o, d, r1, r2) => {
                a.alu(
                    ALU_OPS[o as usize % ALU_OPS.len()],
                    SCRATCH[d as usize % SCRATCH.len()],
                    SCRATCH[r1 as usize % SCRATCH.len()],
                    SCRATCH[r2 as usize % SCRATCH.len()],
                );
            }
            BodyOp::AluImm(o, d, r1, imm) => {
                a.alui(
                    ALU_OPS[o as usize % 5], // no Mul-imm
                    SCRATCH[d as usize % SCRATCH.len()],
                    SCRATCH[r1 as usize % SCRATCH.len()],
                    imm,
                );
            }
            BodyOp::Load(d, x) => {
                // Index = (scratch[x] & 0x3f) * 8 within the array.
                let idx = SCRATCH[x as usize % SCRATCH.len()];
                a.andi(Reg::T4, idx, 0x3f);
                a.slli(Reg::T4, Reg::T4, 3);
                a.add(Reg::T4, Reg::A0, Reg::T4);
                a.ld(SCRATCH[d as usize % SCRATCH.len()], Reg::T4, 0);
            }
            BodyOp::Store(sreg, x) => {
                let idx = SCRATCH[x as usize % SCRATCH.len()];
                a.andi(Reg::T4, idx, 0x3f);
                a.slli(Reg::T4, Reg::T4, 3);
                a.add(Reg::T4, Reg::A0, Reg::T4);
                a.sd(SCRATCH[sreg as usize % SCRATCH.len()], Reg::T4, 0);
            }
            BodyOp::Branch(c, r1, r2) => {
                let label = format!("skip{k}");
                a.branch(
                    CONDS[c as usize % CONDS.len()],
                    SCRATCH[r1 as usize % SCRATCH.len()],
                    SCRATCH[r2 as usize % SCRATCH.len()],
                    &label,
                );
                a.addi(Reg::A5, Reg::A5, 1); // skippable filler
                a.label(&label);
            }
        }
    }
    a.addi(Reg::A1, Reg::A1, 1);
    a.bne(Reg::A1, Reg::A2, "loop");
    a.halt();

    let mut cpu = Cpu::new(a.assemble().expect("generated program assembles"));
    let mut x = 0x1234_5678u64;
    for i in 0..64u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        cpu.mem.write_u64(0x80000 + i * 8, x >> 16);
    }
    cpu.set_reg(Reg::A0, 0x80000);
    cpu.set_reg(Reg::A2, iters as u64);
    // Seed scratch registers so comparisons vary.
    cpu.set_reg(Reg::T0, 3);
    cpu.set_reg(Reg::T1, 0x55);
    cpu.set_reg(Reg::A3, 7);
    cpu
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every random program simulates to completion in every mode, with
    /// identical main-thread architectural behavior (instruction and
    /// branch counts) — the timing model never corrupts architecture.
    #[test]
    fn random_programs_simulate_in_every_mode(
        ops in prop::collection::vec(body_op(), 1..14),
        iters in 200u32..1500,
    ) {
        let cfg = RunConfig::quick(Mode::Baseline, 120_000, 15_000);

        let reference = simulate(build(&ops, iters), &cfg);
        prop_assert!(reference.stats.mt_retired > 0);

        for mode in [
            Mode::PerfectBp,
            Mode::PartitionOnly,
            Mode::Phelps(PhelpsFeatures::full()),
            Mode::Phelps(PhelpsFeatures::no_stores()),
        ] {
            let mut c = cfg.clone();
            c.mode = mode;
            let r = simulate(build(&ops, iters), &c);
            prop_assert_eq!(r.stats.mt_retired, reference.stats.mt_retired);
            prop_assert_eq!(r.stats.mt_cond_branches, reference.stats.mt_cond_branches);
        }
    }
}
