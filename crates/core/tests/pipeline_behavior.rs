//! Behavioral tests of the pipeline through the public `simulate` API:
//! recovery paths, resource accounting, and multi-loop scenarios.

use phelps::sim::{simulate, Mode, PhelpsFeatures, RunConfig};
use phelps_isa::{Asm, Cpu, Reg};

fn cfg(mode: Mode, insts: u64) -> RunConfig {
    RunConfig::quick(mode, insts, 20_000)
}

/// A loop with an aliasing store→load pair close enough to race in the
/// out-of-order window: the store-set predictor must learn it after the
/// first violation and the run must still complete deterministically.
#[test]
fn load_violation_recovery_and_learning() {
    let mut a = Asm::new(0x1000);
    // mem[0x8000] is written then immediately re-read each iteration, with
    // the load's address arriving via a slow dependency chain so the load
    // wants to issue before the store resolves.
    a.label("loop");
    a.li(Reg::T0, 0x8000);
    a.add(Reg::T1, Reg::A1, Reg::A3); // slow-ish data for the store
    a.xor(Reg::T1, Reg::T1, Reg::A1);
    a.sd(Reg::T1, Reg::T0, 0); // store
    a.ld(Reg::T2, Reg::T0, 0); // aliasing load (same address)
    a.add(Reg::A3, Reg::A3, Reg::T2);
    a.addi(Reg::A1, Reg::A1, 1);
    a.bne(Reg::A1, Reg::A2, "loop");
    a.halt();
    let mut cpu = Cpu::new(a.assemble().unwrap());
    cpu.set_reg(Reg::A2, 5_000);

    let r = simulate(cpu, &cfg(Mode::Baseline, 60_000));
    // The run completes; any violations were recovered and the predictor
    // keeps them bounded (well below one per iteration).
    assert!(r.stats.mt_retired >= 40_000);
    assert!(
        r.stats.load_violations < 100,
        "store-set learning bounds violations: {}",
        r.stats.load_violations
    );
}

/// Two independent delinquent loops: both get helper threads (HTC holds
/// four rows) and both trigger.
#[test]
fn two_delinquent_loops_both_cached() {
    let mut a = Asm::new(0x1000);
    // Loop 1 over data at 0x100000.
    a.label("loop1");
    a.slli(Reg::T0, Reg::A1, 3);
    a.add(Reg::T0, Reg::A0, Reg::T0);
    a.ld(Reg::T1, Reg::T0, 0);
    a.andi(Reg::T1, Reg::T1, 1);
    a.beq(Reg::T1, Reg::ZERO, "s1");
    a.addi(Reg::A3, Reg::A3, 1);
    a.label("s1");
    a.add(Reg::S8, Reg::S8, Reg::A1);
    a.xor(Reg::S9, Reg::S9, Reg::S8);
    a.addi(Reg::A1, Reg::A1, 1);
    a.bne(Reg::A1, Reg::A2, "loop1");
    // Loop 2 over data at 0x200000 (separate delinquent branch).
    a.li(Reg::A1, 0);
    a.li(Reg::A4, 0x200000);
    a.label("loop2");
    a.slli(Reg::T0, Reg::A1, 3);
    a.add(Reg::T0, Reg::A4, Reg::T0);
    a.ld(Reg::T1, Reg::T0, 0);
    a.andi(Reg::T1, Reg::T1, 2);
    a.beq(Reg::T1, Reg::ZERO, "s2");
    a.addi(Reg::A3, Reg::A3, 3);
    a.label("s2");
    a.add(Reg::S10, Reg::S10, Reg::A1);
    a.or(Reg::S11, Reg::S11, Reg::S10);
    a.addi(Reg::A1, Reg::A1, 1);
    a.bne(Reg::A1, Reg::A2, "loop2");
    // Back to loop 1 forever (alternate regions).
    a.li(Reg::A1, 0);
    a.j("loop1");

    let mut cpu = Cpu::new(a.assemble().unwrap());
    let mut x = 5u64;
    for i in 0..40_000u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        cpu.mem.write_u64(0x100000 + i * 8, x >> 33);
        cpu.mem.write_u64(0x200000 + i * 8, x >> 17);
    }
    cpu.set_reg(Reg::A0, 0x100000);
    cpu.set_reg(Reg::A2, 40_000);

    let r = simulate(cpu, &cfg(Mode::Phelps(PhelpsFeatures::full()), 400_000));
    // Each region re-entry terminates the old helper thread and triggers
    // the next loop's — both loops must engage over the run.
    assert!(
        r.stats.triggers >= 2,
        "both loops trigger: {}",
        r.stats.triggers
    );
    assert!(r.stats.terminations >= 1);
    assert!(r.stats.preds_from_queue > 1_000);
}

/// Trigger overhead is visible: main-thread fetch stalls while live-in
/// moves inject (paper §V-F step 4).
#[test]
fn trigger_stall_cycles_are_charged() {
    let mut a = Asm::new(0x1000);
    a.label("loop");
    a.slli(Reg::T0, Reg::A1, 3);
    a.add(Reg::T0, Reg::A0, Reg::T0);
    a.ld(Reg::T1, Reg::T0, 0);
    a.andi(Reg::T1, Reg::T1, 1);
    a.beq(Reg::T1, Reg::ZERO, "skip");
    a.addi(Reg::A3, Reg::A3, 1);
    a.label("skip");
    a.add(Reg::S8, Reg::S8, Reg::A1);
    a.xor(Reg::S9, Reg::S9, Reg::S8);
    a.addi(Reg::A1, Reg::A1, 1);
    a.bne(Reg::A1, Reg::A2, "loop");
    a.halt();
    let mut cpu = Cpu::new(a.assemble().unwrap());
    let mut x = 9u64;
    for i in 0..40_000u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        cpu.mem.write_u64(0x100000 + i * 8, x >> 33);
    }
    cpu.set_reg(Reg::A0, 0x100000);
    cpu.set_reg(Reg::A2, 40_000);

    let r = simulate(cpu, &cfg(Mode::Phelps(PhelpsFeatures::full()), 300_000));
    assert!(r.stats.triggers > 0);
    assert!(
        r.stats.mt_fetch_stall_trigger > 0,
        "live-in injection stalls are charged"
    );
}

/// The helper thread's prefetching side effect: its loads warm the shared
/// cache hierarchy for the main thread (§II "load pre-execution" note).
#[test]
fn helper_thread_warms_shared_caches() {
    // Compare L1D miss ratios: with the helper thread running ahead, the
    // main thread's demand misses cannot be dramatically worse, and total
    // work completes faster despite doubled accesses.
    let make = || {
        let mut a = Asm::new(0x1000);
        a.label("loop");
        a.slli(Reg::T0, Reg::A1, 3);
        a.add(Reg::T0, Reg::A0, Reg::T0);
        a.ld(Reg::T1, Reg::T0, 0);
        a.andi(Reg::T1, Reg::T1, 1);
        a.beq(Reg::T1, Reg::ZERO, "skip");
        a.addi(Reg::A3, Reg::A3, 1);
        a.label("skip");
        a.add(Reg::S8, Reg::S8, Reg::A1);
        a.xor(Reg::S9, Reg::S9, Reg::S8);
        a.addi(Reg::A1, Reg::A1, 1);
        a.bne(Reg::A1, Reg::A2, "loop");
        a.halt();
        let mut cpu = Cpu::new(a.assemble().unwrap());
        let mut x = 11u64;
        for i in 0..120_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            cpu.mem.write_u64(0x100000 + i * 8, x >> 33);
        }
        cpu.set_reg(Reg::A0, 0x100000);
        cpu.set_reg(Reg::A2, 120_000);
        cpu
    };
    let base = simulate(make(), &cfg(Mode::Baseline, 400_000));
    let ph = simulate(make(), &cfg(Mode::Phelps(PhelpsFeatures::full()), 400_000));
    assert!(
        ph.stats.ipc() > base.stats.ipc(),
        "net win despite extra accesses"
    );
    assert!(
        ph.stats.l1d_accesses > base.stats.l1d_accesses,
        "helper loads hit the shared caches"
    );
}
