//! Merge-law property tests for [`Report::merge`].
//!
//! Sharded simulation folds per-shard telemetry reports in shard order;
//! the worker count must never change the merged bytes, which requires:
//!
//! * **associativity** and **`Report::default()` as identity** — full
//!   structural equality, over arbitrary well-formed reports;
//! * **commutativity of every unordered aggregate** — counters, gauges,
//!   histograms, `final_cycle`, `events_dropped`, `verbose`,
//!   `epoch_len`, and the epoch/event *multisets*. The epoch and event
//!   sequences themselves are order-defined splices (that is the point
//!   of folding in shard order), so full commutativity is not claimed.
//!
//! Generated reports respect the recording invariants the merge is
//! specified against: events sorted by cycle and bounded by
//! `final_cycle`, epochs in series order with nondecreasing end cycles —
//! exactly what a [`phelps_telemetry::Registry`] produces.

use phelps_telemetry::{
    Counter, EpochSample, EventKind, EventRecord, Gauge, GaugeSummary, Hist, HistSummary, Report,
};
use proptest::prelude::*;

/// Scalar aggregate magnitudes, including near-`u64::MAX` values so the
/// saturating paths participate in the law checks.
fn big() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..1_000_000, (u64::MAX - 1_000)..=u64::MAX, any::<u64>(),]
}

/// Raw material for one report, shaped by [`build_report`]. Series
/// cycles stay modest (the cycle splice re-bases by summed
/// `final_cycle`s, and a run whose clock is near `u64::MAX` is not a
/// state the recorder can produce).
type Raw = (
    (usize, u64, bool, u64),   // label pick, epoch_len, verbose, events_dropped
    Vec<u64>,                  // counters
    Vec<(u64, u64, u64)>,      // gauges: sum (as u64), max, samples
    Vec<(Vec<u64>, u64, u64)>, // hists: buckets, count, sum (as u64)
    Vec<((u64, u64, u64, u64), (u64, u64, u64), (u32, u32, u32, u32))>, // epochs
    (Vec<(u8, u64, u64, u64)>, u64), // events (kind, cycle-delta, pc, info), final-cycle slack
);

fn raw() -> impl Strategy<Value = Raw> {
    (
        (0usize..3, 0u64..1_000, any::<bool>(), big()),
        prop::collection::vec(big(), Counter::COUNT..Counter::COUNT + 1),
        prop::collection::vec((big(), big(), big()), Gauge::COUNT..Gauge::COUNT + 1),
        prop::collection::vec(
            (prop::collection::vec(big(), 0..6), big(), big()),
            Hist::COUNT..Hist::COUNT + 1,
        ),
        prop::collection::vec(
            (
                (0u64..50_000, 0u64..50_000, 0u64..1_000, 0u64..1_000),
                (0u64..1_000, 0u64..1_000, 0u64..50_000),
                (0u32..4_096, 0u32..4_096, 0u32..4_096, 0u32..4_096),
            ),
            0..4,
        ),
        (
            prop::collection::vec((0u8..5, 0u64..10_000, big(), big()), 0..6),
            0u64..100_000,
        ),
    )
}

fn kind(sel: u8) -> EventKind {
    match sel % 5 {
        0 => EventKind::Trigger,
        1 => EventKind::Terminate,
        2 => EventKind::HtcInstall,
        3 => EventKind::Mispredict,
        _ => EventKind::DramMiss,
    }
}

fn build_report(r: Raw) -> Report {
    let ((label_sel, epoch_len, verbose, events_dropped), counters, gauges, hists, epochs, events) =
        r;
    let mut report = Report {
        label: ["", "shard", "run/a"][label_sel].to_string(),
        epoch_len,
        verbose,
        events_dropped,
        ..Report::default()
    };
    report.counters.copy_from_slice(&counters);
    for (slot, (sum, max, samples)) in report.gauges.iter_mut().zip(gauges) {
        *slot = GaugeSummary {
            sum: u128::from(sum),
            max,
            samples,
        };
    }
    for (slot, (buckets, count, sum)) in report.hists.iter_mut().zip(hists) {
        *slot = HistSummary {
            buckets,
            count,
            sum: u128::from(sum),
        };
    }
    // Epochs close in series order: indices are positions and end
    // cycles never decrease.
    let mut end_cycle = 0u64;
    for (j, ((cycles, retired, mispredicts, triggers), (pred_hits, dram, ifetch), floats)) in
        epochs.into_iter().enumerate()
    {
        end_cycle += cycles;
        let (ipc, mpki, rob, pq) = floats;
        report.epochs.push(EpochSample {
            epoch: j as u64,
            end_cycle,
            cycles,
            retired,
            ipc: f64::from(ipc) / 64.0,
            mispredicts,
            mpki: f64::from(mpki) / 64.0,
            triggers,
            pred_hits,
            dram_accesses: dram,
            ifetch_stalls: ifetch,
            avg_rob: f64::from(rob) / 64.0,
            avg_pred_queue: f64::from(pq) / 64.0,
        });
    }
    // Events are recorded in cycle order and never past the run's final
    // cycle: cumulative deltas keep them sorted, and `final_cycle`
    // covers the last of everything plus slack.
    let (raw_events, slack) = events;
    let mut cycle = 0u64;
    for (sel, delta, pc, info) in raw_events {
        cycle += delta;
        report.events.push(EventRecord {
            kind: kind(sel),
            cycle,
            pc,
            info,
        });
    }
    report.final_cycle = cycle.max(end_cycle) + slack;
    report
}

fn rep() -> impl Strategy<Value = Report> {
    raw().prop_map(build_report)
}

fn merged(a: &Report, b: &Report) -> Report {
    let mut m = a.clone();
    m.merge(b);
    m
}

/// Multiset key of one epoch's payload — everything except the
/// position-defined `epoch` index and spliced `end_cycle`.
fn epoch_key(e: &EpochSample) -> (u64, u64, u64, u64, u64, u64, u64, [u64; 4]) {
    (
        e.cycles,
        e.retired,
        e.mispredicts,
        e.triggers,
        e.pred_hits,
        e.dram_accesses,
        e.ifetch_stalls,
        [
            e.ipc.to_bits(),
            e.mpki.to_bits(),
            e.avg_rob.to_bits(),
            e.avg_pred_queue.to_bits(),
        ],
    )
}

/// Multiset key of one event — everything except the spliced cycle.
fn event_key(e: &EventRecord) -> (&'static str, u64, u64) {
    (e.kind.name(), e.pc, e.info)
}

fn sorted_keys<T: Ord>(keys: impl Iterator<Item = T>) -> Vec<T> {
    let mut v: Vec<T> = keys.collect();
    v.sort();
    v
}

proptest! {
    #[test]
    fn default_is_identity(a in rep()) {
        prop_assert_eq!(merged(&a, &Report::default()), a.clone());
        prop_assert_eq!(merged(&Report::default(), &a), a);
    }

    #[test]
    fn merge_associates(a in rep(), b in rep(), c in rep()) {
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn unordered_aggregates_commute(a in rep(), b in rep()) {
        let ab = merged(&a, &b);
        let ba = merged(&b, &a);
        prop_assert_eq!(ab.counters, ba.counters);
        prop_assert_eq!(ab.gauges, ba.gauges);
        prop_assert_eq!(&ab.hists, &ba.hists);
        prop_assert_eq!(ab.final_cycle, ba.final_cycle);
        prop_assert_eq!(ab.events_dropped, ba.events_dropped);
        prop_assert_eq!(ab.verbose, ba.verbose);
        prop_assert_eq!(ab.epoch_len, ba.epoch_len);
        prop_assert_eq!(
            sorted_keys(ab.epochs.iter().map(epoch_key)),
            sorted_keys(ba.epochs.iter().map(epoch_key)),
            "epoch payload multiset must not depend on merge order"
        );
        prop_assert_eq!(
            sorted_keys(ab.events.iter().map(event_key)),
            sorted_keys(ba.events.iter().map(event_key)),
            "event multiset must not depend on merge order"
        );
    }

    #[test]
    fn epoch_splice_renumbers_and_rebases(a in rep(), b in rep()) {
        let m = merged(&a, &b);
        prop_assert_eq!(m.epochs.len(), a.epochs.len() + b.epochs.len());
        // Spliced indices are the positions in the combined series.
        for (j, e) in m.epochs.iter().enumerate().skip(a.epochs.len()) {
            prop_assert_eq!(e.epoch, j as u64);
            let orig = &b.epochs[j - a.epochs.len()];
            prop_assert_eq!(e.end_cycle, a.final_cycle.saturating_add(orig.end_cycle));
        }
        // Events stay sorted by cycle, and none is lost.
        prop_assert!(m.events.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        prop_assert_eq!(m.events.len(), a.events.len() + b.events.len());
        prop_assert_eq!(m.final_cycle, a.final_cycle.saturating_add(b.final_cycle));
    }
}
