//! Finalized telemetry reports and their JSON/CSV serializations.

use crate::json::JsonWriter;
use crate::{Counter, EventKind, Gauge, Hist, MergeKind};

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// What happened.
    pub kind: EventKind,
    /// Cycle it happened at.
    pub cycle: u64,
    /// Program counter involved (0 when not applicable).
    pub pc: u64,
    /// Kind-specific payload (cause code, latency, epoch index, ...).
    pub info: u64,
}

/// Per-epoch time-series sample; epochs close every
/// [`crate::Config::epoch_len`] retired main-thread instructions.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochSample {
    /// Epoch index, from 0.
    pub epoch: u64,
    /// Cycle at which the epoch closed.
    pub end_cycle: u64,
    /// Cycles spanned by the epoch.
    pub cycles: u64,
    /// Main-thread instructions retired in the epoch.
    pub retired: u64,
    /// Instructions per cycle over the epoch.
    pub ipc: f64,
    /// Conditional mispredicts in the epoch.
    pub mispredicts: u64,
    /// Mispredicts per kilo-instruction over the epoch.
    pub mpki: f64,
    /// Pre-execution triggers in the epoch.
    pub triggers: u64,
    /// Timely prediction-queue hits in the epoch.
    pub pred_hits: u64,
    /// DRAM accesses in the epoch.
    pub dram_accesses: u64,
    /// Fetch cycles stalled on an in-flight L1-I miss in the epoch.
    pub ifetch_stalls: u64,
    /// Mean ROB occupancy over the epoch's cycles.
    pub avg_rob: f64,
    /// Mean prediction-queue depth over the epoch's cycles.
    pub avg_pred_queue: f64,
}

/// Summary of one gauge over the whole run.
///
/// The summary stores the raw sample *sum*, not the mean: a stored mean
/// is a derived ratio, and averaging two shards' means is neither exact
/// nor associative. The mean is computed at read time by [`avg`].
///
/// [`avg`]: GaugeSummary::avg
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct GaugeSummary {
    /// Sum of all samples.
    pub sum: u128,
    /// Largest sample.
    pub max: u64,
    /// Number of samples.
    pub samples: u64,
}

impl GaugeSummary {
    /// Mean of all samples (0.0 when none were recorded).
    pub fn avg(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }
}

/// Summary of one log2 histogram.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct HistSummary {
    /// Bucket `i` counts values whose bit length is `i` (bucket 0 is the
    /// value 0).
    pub buckets: Vec<u64>,
    /// Total values recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u128,
}

/// An immutable, finished telemetry report for one simulated run (or,
/// after [`Report::merge`], for a sequence of shard runs stitched into
/// one logical run).
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Run label from the installed config.
    pub label: String,
    /// Epoch length (retired instructions) the series was sampled at.
    pub epoch_len: u64,
    /// Whether verbose event kinds were recorded.
    pub verbose: bool,
    /// Last cycle observed via `tick`.
    pub final_cycle: u64,
    /// Counter totals, indexed by [`Counter`] discriminant.
    pub counters: [u64; Counter::COUNT],
    /// Gauge summaries, indexed by [`Gauge`] discriminant.
    pub gauges: [GaugeSummary; Gauge::COUNT],
    /// Histogram summaries, indexed by [`Hist`] discriminant.
    pub hists: [HistSummary; Hist::COUNT],
    /// Per-epoch series, oldest first.
    pub epochs: Vec<EpochSample>,
    /// Recorded events, oldest first.
    pub events: Vec<EventRecord>,
    /// Events discarded after the ring filled.
    pub events_dropped: u64,
}

impl Default for Report {
    /// The empty report: zero everywhere, no label. This is the identity
    /// of [`Report::merge`].
    fn default() -> Report {
        Report {
            label: String::new(),
            epoch_len: 0,
            verbose: false,
            final_cycle: 0,
            counters: [0; Counter::COUNT],
            gauges: [GaugeSummary::default(); Gauge::COUNT],
            hists: std::array::from_fn(|_| HistSummary::default()),
            epochs: Vec::new(),
            events: Vec::new(),
            events_dropped: 0,
        }
    }
}

/// Number of per-epoch feature columns produced by
/// [`Report::epoch_feature_rows`].
pub const EPOCH_FEATURES: usize = 6;

/// Column names of [`Report::epoch_feature_rows`], in order. The first
/// six telemetry slots of the `phelps-proxy` feature vector use the
/// same definitions, so a prefix of the epoch series and a whole-run
/// stats bundle feed the same model.
pub const EPOCH_FEATURE_NAMES: [&str; EPOCH_FEATURES] = [
    "ipc",
    "mpki",
    "triggers_pki",
    "pred_hits_pki",
    "mem_pki",
    "ifetch_stall_frac",
];

impl Report {
    /// Total for one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// The epoch series as fixed-width numeric feature rows (one row per
    /// epoch, columns per [`EPOCH_FEATURE_NAMES`]): IPC, MPKI, triggers
    /// and timely queue hits per kilo-instruction, memory (DRAM)
    /// accesses per kilo-instruction, and the fraction of the epoch's
    /// cycles fetch spent stalled on L1-I misses.
    ///
    /// Rates are recomputed from the epoch's raw counts (never taken
    /// from the stored `ipc`/`mpki` fields), and every division is
    /// guarded: an epoch with zero retired instructions or zero cycles
    /// contributes 0.0 in the affected columns instead of NaN/inf, so a
    /// feature extractor can consume any report — including partial or
    /// degenerate runs — without dividing by zero.
    pub fn epoch_feature_rows(&self) -> Vec<[f64; EPOCH_FEATURES]> {
        self.epochs
            .iter()
            .map(|e| {
                let per_kilo = |n: u64| {
                    if e.retired == 0 {
                        0.0
                    } else {
                        1000.0 * n as f64 / e.retired as f64
                    }
                };
                let ipc = if e.cycles == 0 {
                    0.0
                } else {
                    e.retired as f64 / e.cycles as f64
                };
                let stall_frac = if e.cycles == 0 {
                    0.0
                } else {
                    e.ifetch_stalls as f64 / e.cycles as f64
                };
                [
                    ipc,
                    per_kilo(e.mispredicts),
                    per_kilo(e.triggers),
                    per_kilo(e.pred_hits),
                    per_kilo(e.dram_accesses),
                    stall_frac,
                ]
            })
            .collect()
    }

    /// Folds a later shard's report into this one, stitching two runs
    /// whose cycle clocks both start at zero into one logical run.
    ///
    /// Per-aggregate semantics:
    ///
    /// * **counters** combine by [`Counter::merge_kind`] — a saturating
    ///   sum for every current kind; a future high-water-mark counter
    ///   would declare [`MergeKind::Max`];
    /// * **gauges** — `sum` and `samples` add, `max` takes the larger,
    ///   so the read-time [`GaugeSummary::avg`] is the exact sample mean
    ///   over both runs;
    /// * **log2 histograms** add bucketwise (plus their count/sum
    ///   totals);
    /// * the **epoch series** splices: `other`'s epochs are appended
    ///   with indices renumbered to their position in the combined
    ///   series and `end_cycle` re-based by this report's
    ///   `final_cycle`, recovering one continuous timeline;
    /// * **events** interleave by re-based cycle (stable: on equal
    ///   cycles this report's events come first). *Capacity policy:*
    ///   the ring bound applies per run while recording; the merge
    ///   keeps every surviving event from both sides — a merged report
    ///   holds up to `shards × ring_capacity` events — and
    ///   `events_dropped` sums;
    /// * `final_cycle` adds, `verbose` ORs, `epoch_len` takes the max,
    ///   and an empty label adopts `other`'s.
    ///
    /// The merge is associative with `Report::default()` as identity,
    /// and commutative for every unordered aggregate (counters, gauges,
    /// histograms, `final_cycle`, `events_dropped`). The epoch and
    /// event series are order-defined splices, so shards must fold in
    /// shard order for byte-identical series. These laws are pinned by
    /// `tests/prop_report_merge.rs`.
    pub fn merge(&mut self, other: &Report) {
        if self.label.is_empty() {
            self.label = other.label.clone();
        }
        self.epoch_len = self.epoch_len.max(other.epoch_len);
        self.verbose |= other.verbose;
        for c in Counter::ALL {
            let i = c as usize;
            self.counters[i] = match c.merge_kind() {
                MergeKind::Sum => self.counters[i].saturating_add(other.counters[i]),
                MergeKind::Max => self.counters[i].max(other.counters[i]),
            };
        }
        for i in 0..Gauge::COUNT {
            let b = &other.gauges[i];
            let a = &mut self.gauges[i];
            a.sum = a.sum.saturating_add(b.sum);
            a.samples = a.samples.saturating_add(b.samples);
            a.max = a.max.max(b.max);
        }
        for i in 0..Hist::COUNT {
            let b = &other.hists[i];
            let a = &mut self.hists[i];
            if a.buckets.len() < b.buckets.len() {
                a.buckets.resize(b.buckets.len(), 0);
            }
            for (x, &y) in a.buckets.iter_mut().zip(&b.buckets) {
                *x = x.saturating_add(y);
            }
            a.count = a.count.saturating_add(b.count);
            a.sum = a.sum.saturating_add(b.sum);
        }
        let cycle_base = self.final_cycle;
        let epoch_base = self.epochs.len() as u64;
        self.epochs
            .extend(other.epochs.iter().enumerate().map(|(j, e)| EpochSample {
                epoch: epoch_base + j as u64,
                end_cycle: cycle_base.saturating_add(e.end_cycle),
                ..e.clone()
            }));
        let mut merged = Vec::with_capacity(self.events.len() + other.events.len());
        let mut ours = std::mem::take(&mut self.events).into_iter().peekable();
        let mut theirs = other
            .events
            .iter()
            .map(|ev| EventRecord {
                cycle: cycle_base.saturating_add(ev.cycle),
                ..*ev
            })
            .peekable();
        loop {
            match (ours.peek(), theirs.peek()) {
                (Some(a), Some(b)) => {
                    if a.cycle <= b.cycle {
                        merged.push(ours.next().unwrap());
                    } else {
                        merged.push(theirs.next().unwrap());
                    }
                }
                (Some(_), None) => merged.push(ours.next().unwrap()),
                (None, Some(_)) => merged.push(theirs.next().unwrap()),
                (None, None) => break,
            }
        }
        self.events = merged;
        self.events_dropped = self.events_dropped.saturating_add(other.events_dropped);
        self.final_cycle = cycle_base.saturating_add(other.final_cycle);
    }

    /// Number of recorded events of `kind`.
    pub fn event_count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Serializes the whole report as one JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("label");
        w.string(&self.label);
        w.key("epoch_len");
        w.uint(self.epoch_len);
        w.key("verbose");
        w.bool(self.verbose);
        w.key("final_cycle");
        w.uint(self.final_cycle);

        w.key("counters");
        w.begin_object();
        for c in Counter::ALL {
            w.key(c.name());
            w.uint(self.counter(c));
        }
        w.end_object();

        w.key("gauges");
        w.begin_object();
        for g in Gauge::ALL {
            let s = &self.gauges[g as usize];
            w.key(g.name());
            w.begin_object();
            // "avg" is computed here from the stored sum/samples; the
            // summary itself never stores a ratio (see [`GaugeSummary`]).
            w.key("avg");
            w.float(s.avg());
            w.key("max");
            w.uint(s.max);
            w.key("samples");
            w.uint(s.samples);
            w.end_object();
        }
        w.end_object();

        w.key("hists");
        w.begin_object();
        for h in Hist::ALL {
            let s = &self.hists[h as usize];
            w.key(h.name());
            w.begin_object();
            w.key("count");
            w.uint(s.count);
            w.key("mean");
            w.float(if s.count == 0 {
                0.0
            } else {
                s.sum as f64 / s.count as f64
            });
            w.key("buckets");
            w.begin_array();
            // Trailing zero buckets are elided to keep files small; the
            // reader treats missing buckets as zero.
            let last = s.buckets.iter().rposition(|&b| b > 0).map_or(0, |i| i + 1);
            for &b in &s.buckets[..last] {
                w.uint(b);
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();

        w.key("epochs");
        w.begin_array();
        for e in &self.epochs {
            w.begin_object();
            w.key("epoch");
            w.uint(e.epoch);
            w.key("end_cycle");
            w.uint(e.end_cycle);
            w.key("cycles");
            w.uint(e.cycles);
            w.key("retired");
            w.uint(e.retired);
            w.key("ipc");
            w.float(e.ipc);
            w.key("mispredicts");
            w.uint(e.mispredicts);
            w.key("mpki");
            w.float(e.mpki);
            w.key("triggers");
            w.uint(e.triggers);
            w.key("pred_hits");
            w.uint(e.pred_hits);
            w.key("dram_accesses");
            w.uint(e.dram_accesses);
            w.key("ifetch_stalls");
            w.uint(e.ifetch_stalls);
            w.key("avg_rob");
            w.float(e.avg_rob);
            w.key("avg_pred_queue");
            w.float(e.avg_pred_queue);
            w.end_object();
        }
        w.end_array();

        w.key("events");
        w.begin_array();
        for e in &self.events {
            w.begin_object();
            w.key("kind");
            w.string(e.kind.name());
            w.key("cycle");
            w.uint(e.cycle);
            w.key("pc");
            w.uint(e.pc);
            w.key("info");
            w.uint(e.info);
            w.end_object();
        }
        w.end_array();
        w.key("events_dropped");
        w.uint(self.events_dropped);
        w.end_object();
        w.finish()
    }

    /// Serializes the per-epoch series as CSV with a header row.
    pub fn epochs_csv(&self) -> String {
        let mut out = String::from(
            "epoch,end_cycle,cycles,retired,ipc,mispredicts,mpki,\
             triggers,pred_hits,dram_accesses,ifetch_stalls,avg_rob,avg_pred_queue\n",
        );
        for e in &self.epochs {
            out.push_str(&format!(
                "{},{},{},{},{:.6},{},{:.6},{},{},{},{},{:.3},{:.3}\n",
                e.epoch,
                e.end_cycle,
                e.cycles,
                e.retired,
                e.ipc,
                e.mispredicts,
                e.mpki,
                e.triggers,
                e.pred_hits,
                e.dram_accesses,
                e.ifetch_stalls,
                e.avg_rob,
                e.avg_pred_queue,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_json, Config, JsonValue, Registry};

    fn sample_report() -> Report {
        let mut reg = Registry::new(Config {
            epoch_len: 4,
            label: "unit \"quoted\" label".to_string(),
            ..Config::default()
        });
        let reg_ref = &mut reg;
        // Drive the registry directly (not via thread-local) so this
        // test is independent of install/harvest state.
        for cycle in 0..10u64 {
            reg_ref.tick(cycle);
            reg_ref.gauge(Gauge::RobOccupancy, cycle);
            reg_ref.add(Counter::MtRetired, 1);
        }
        reg_ref.hist(Hist::MissLatency, 200);
        reg_ref.event(EventKind::Trigger, 3, 0x4000_0000, 0);
        reg.into_report()
    }

    #[test]
    fn json_round_trips_through_parser() {
        let rep = sample_report();
        let text = rep.to_json();
        let v = parse_json(&text).expect("report JSON must parse");
        let obj = match v {
            JsonValue::Object(o) => o,
            other => panic!("expected object, got {other:?}"),
        };
        let get = |k: &str| {
            obj.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("missing key {k}"))
        };
        assert_eq!(
            get("label"),
            &JsonValue::String("unit \"quoted\" label".into())
        );
        assert_eq!(get("epoch_len"), &JsonValue::Number(4.0));
        match get("counters") {
            JsonValue::Object(counters) => {
                assert!(counters
                    .iter()
                    .any(|(k, v)| k == "mt_retired" && *v == JsonValue::Number(10.0)));
                assert_eq!(counters.len(), Counter::COUNT);
            }
            other => panic!("counters not an object: {other:?}"),
        }
        match get("epochs") {
            // 2 full epochs of 4 plus a flushed partial of 2.
            JsonValue::Array(epochs) => assert_eq!(epochs.len(), 3),
            other => panic!("epochs not an array: {other:?}"),
        }
        match get("events") {
            JsonValue::Array(events) => {
                // Trigger + 3 epoch-end events.
                assert_eq!(events.len(), 4);
            }
            other => panic!("events not an array: {other:?}"),
        }
    }

    #[test]
    fn csv_has_header_and_one_row_per_epoch() {
        let rep = sample_report();
        let csv = rep.epochs_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + rep.epochs.len());
        assert!(lines[0].starts_with("epoch,end_cycle,"));
        assert!(lines[1].starts_with("0,"));
        let cols = lines[0].split(',').count();
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), cols, "ragged row: {row}");
        }
    }

    #[test]
    fn event_count_filters_by_kind() {
        let rep = sample_report();
        assert_eq!(rep.event_count(EventKind::Trigger), 1);
        assert_eq!(rep.event_count(EventKind::EpochEnd), 3);
        assert_eq!(rep.event_count(EventKind::Mispredict), 0);
    }

    #[test]
    fn epoch_feature_rows_empty_series() {
        let rep = Report::default();
        assert!(rep.epoch_feature_rows().is_empty());
    }

    #[test]
    fn epoch_feature_rows_single_epoch() {
        let mut rep = Report::default();
        rep.epochs.push(EpochSample {
            epoch: 0,
            end_cycle: 500,
            cycles: 500,
            retired: 1000,
            ipc: 0.0, // stored fields are deliberately ignored
            mispredicts: 20,
            mpki: 0.0,
            triggers: 4,
            pred_hits: 10,
            dram_accesses: 6,
            ifetch_stalls: 50,
            avg_rob: 0.0,
            avg_pred_queue: 0.0,
        });
        let rows = rep.epoch_feature_rows();
        assert_eq!(rows.len(), 1);
        let r = rows[0];
        assert!((r[0] - 2.0).abs() < 1e-12, "ipc = retired/cycles");
        assert!((r[1] - 20.0).abs() < 1e-12, "mpki");
        assert!((r[2] - 4.0).abs() < 1e-12, "triggers_pki");
        assert!((r[3] - 10.0).abs() < 1e-12, "pred_hits_pki");
        assert!((r[4] - 6.0).abs() < 1e-12, "mem_pki");
        assert!((r[5] - 0.1).abs() < 1e-12, "ifetch_stall_frac");
    }

    #[test]
    fn epoch_feature_rows_zero_cycle_and_zero_retired_epochs_are_finite() {
        let mut rep = Report::default();
        let degenerate = EpochSample {
            epoch: 0,
            end_cycle: 0,
            cycles: 0,
            retired: 0,
            ipc: f64::NAN,
            mispredicts: 7,
            mpki: f64::INFINITY,
            triggers: 1,
            pred_hits: 1,
            dram_accesses: 1,
            ifetch_stalls: 1,
            avg_rob: 0.0,
            avg_pred_queue: 0.0,
        };
        rep.epochs.push(degenerate.clone());
        rep.epochs.push(EpochSample {
            epoch: 1,
            cycles: 100,
            retired: 0, // zero retired but nonzero cycles
            ..degenerate
        });
        for row in rep.epoch_feature_rows() {
            for (i, v) in row.iter().enumerate() {
                assert!(v.is_finite(), "column {i} not finite: {v}");
            }
        }
        let rows = rep.epoch_feature_rows();
        assert_eq!(rows[0], [0.0; EPOCH_FEATURES]);
        // Second epoch: rates over retired are 0, stall fraction is real.
        assert!((rows[1][5] - 0.01).abs() < 1e-12);
    }
}
