//! Minimal JSON support: an append-only writer used by the exporters
//! and a recursive-descent parser used to validate exported files in
//! tests and tooling. Both cover exactly the JSON subset the telemetry
//! schema emits (no unicode escapes beyond `\uXXXX` decoding, no
//! exponent printing).

/// A parsed JSON value. Objects preserve key order and permit duplicate
/// keys (the telemetry schema never produces duplicates).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always parsed as f64).
    Number(f64),
    /// String literal.
    String(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object, as ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self
            .peek()
            .ok_or_else(|| "unexpected end of input".to_string())?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.bump()?;
        if got != b {
            return Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            ));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(JsonValue::Object(pairs)),
                c => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found '{}'",
                        self.pos - 1,
                        c as char
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(JsonValue::Array(items)),
                c => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found '{}'",
                        self.pos - 1,
                        c as char
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            code = code * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| format!("bad \\u digit at byte {}", self.pos))?;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad \\u code point {code:#x}"))?,
                        );
                    }
                    c => return Err(format!("bad escape '\\{}'", c as char)),
                },
                c if c < 0x20 => return Err(format!("raw control byte {c:#x} in string")),
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = match c {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(format!("invalid UTF-8 lead byte {c:#x}")),
                    };
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| "truncated UTF-8 sequence".to_string())?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|e| format!("invalid UTF-8 in string: {e}"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

/// An append-only JSON writer that handles separators and escaping.
/// Call sequence mirrors document structure: `begin_object`, `key`,
/// value, ..., `end_object`, then [`JsonWriter::finish`].
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// Per-nesting-level flag: does the current container already hold
    /// an element (so the next one needs a comma)?
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    fn before_value(&mut self) {
        if let Some(top) = self.needs_comma.last_mut() {
            if *top {
                self.out.push(',');
            }
            *top = true;
        }
    }

    /// Opens `{`.
    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.needs_comma.push(false);
    }

    /// Closes `}`.
    pub fn end_object(&mut self) {
        self.needs_comma.pop();
        self.out.push('}');
    }

    /// Opens `[`.
    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.needs_comma.push(false);
    }

    /// Closes `]`.
    pub fn end_array(&mut self) {
        self.needs_comma.pop();
        self.out.push(']');
    }

    /// Writes an object key (escaped) and its `:`.
    pub fn key(&mut self, k: &str) {
        self.before_value();
        Self::push_escaped(&mut self.out, k);
        self.out.push(':');
        // The key's comma was consumed; its value must not add another.
        if let Some(top) = self.needs_comma.last_mut() {
            *top = false;
        }
    }

    /// Writes an escaped string value.
    pub fn string(&mut self, s: &str) {
        self.before_value();
        Self::push_escaped(&mut self.out, s);
    }

    /// Writes an unsigned integer value.
    pub fn uint(&mut self, v: u64) {
        self.before_value();
        self.out.push_str(&v.to_string());
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.before_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Writes a finite float (6 decimal places); NaN/Inf become `null`.
    pub fn float(&mut self, v: f64) {
        self.before_value();
        if v.is_finite() {
            // Enough digits to round-trip the values we emit; plain
            // decimal notation so any JSON reader accepts it.
            let s = format!("{v:.6}");
            self.out.push_str(&s);
        } else {
            // JSON has no NaN/Inf; emit null so the file stays valid.
            self.out.push_str("null");
        }
    }

    /// Returns the accumulated document.
    pub fn finish(self) -> String {
        self.out
    }

    fn push_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": true, "d": null}, "e": "x\ny"}"#)
            .expect("valid");
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("{} junk").is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn parses_unicode_escapes_and_utf8() {
        let v = parse(r#""café naïve""#).expect("valid");
        assert_eq!(v.as_str(), Some("café naïve"));
    }

    #[test]
    fn writer_emits_parseable_output() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name");
        w.string("a \"b\" c\\d\ne");
        w.key("nums");
        w.begin_array();
        w.uint(1);
        w.uint(2);
        w.float(1.5);
        w.float(f64::NAN);
        w.end_array();
        w.key("flag");
        w.bool(false);
        w.key("empty_obj");
        w.begin_object();
        w.end_object();
        w.key("empty_arr");
        w.begin_array();
        w.end_array();
        w.end_object();
        let text = w.finish();
        let v = parse(&text).unwrap_or_else(|e| panic!("writer output invalid: {e}\n{text}"));
        assert_eq!(v.get("name").unwrap().as_str(), Some("a \"b\" c\\d\ne"));
        let nums = v.get("nums").unwrap().as_array().unwrap();
        assert_eq!(nums.len(), 4);
        assert_eq!(nums[3], JsonValue::Null);
        assert_eq!(v.get("flag"), Some(&JsonValue::Bool(false)));
        assert_eq!(v.get("empty_obj"), Some(&JsonValue::Object(vec![])));
        assert_eq!(v.get("empty_arr"), Some(&JsonValue::Array(vec![])));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(JsonValue::Number(5.0).as_u64(), Some(5));
        assert_eq!(JsonValue::Number(5.5).as_u64(), None);
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
    }
}
