//! Run telemetry for the Phelps simulator: typed counters, occupancy
//! gauges, log2 latency histograms, a bounded event ring, and per-epoch
//! time-series samples, exported as hand-rolled JSON or CSV.
//!
//! # Model
//!
//! A [`Registry`] is installed per thread with [`install`]; every record
//! call ([`count`], [`add`], [`gauge`], [`event`], [`hist`], [`tick`])
//! is a free function that consults a thread-local `enabled` flag first
//! and returns immediately when no registry is installed. Simulation
//! code therefore carries no telemetry handles and pays one predictable
//! branch per call site when tracing is off.
//!
//! The thread-local design also gives per-test isolation: `cargo test`
//! runs tests on separate threads, so concurrent simulations never share
//! a registry.
//!
//! When the simulated run completes, the owner calls [`harvest`] to take
//! the finished [`Report`], which serializes with [`Report::to_json`]
//! (single object) or [`Report::epochs_csv`] (per-epoch series).
//!
//! # Epochs
//!
//! The registry closes an epoch every `epoch_len` retired main-thread
//! instructions (tracked through [`Counter::MtRetired`]), snapshotting
//! counter deltas and gauge averages into an [`EpochSample`]. This gives
//! IPC/MPKI time series aligned with the helper-thread epoch machinery
//! of the simulator, whose epochs are likewise retirement-counted.
//!
//! # Event volume
//!
//! The event ring is bounded; once full, further events are counted in
//! `events_dropped` rather than stored. High-frequency event kinds
//! (per-mispredict, per-DRAM-miss, per-MSHR-conflict) are additionally
//! gated behind [`Config::verbose`] so that structural events (trigger,
//! terminate, epoch end, HTC install) survive ring pressure on long
//! runs.

mod json;
mod report;

pub use json::{parse as parse_json, JsonValue, JsonWriter};
pub use report::{
    EpochSample, EventRecord, GaugeSummary, HistSummary, Report, EPOCH_FEATURES,
    EPOCH_FEATURE_NAMES,
};

use std::cell::{Cell, RefCell};
use std::sync::Arc;

/// Monotonic counters, indexed densely by discriminant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Counter {
    /// Main-thread instructions retired.
    MtRetired,
    /// Main-thread conditional branches retired.
    MtCondBranches,
    /// Main-thread conditional branch mispredicts.
    MtMispredicts,
    /// Main-thread pipeline squashes (any cause).
    MtSquashes,
    /// Load-store ordering violations detected at retire.
    LoadViolations,
    /// Helper-thread pre-execution triggers.
    Triggers,
    /// Helper-thread pre-execution terminations.
    Terminations,
    /// Predictions deposited into the prediction queues.
    PredDeposits,
    /// Prediction-queue lookups that supplied a timely prediction.
    PredConsumeHits,
    /// Prediction-queue lookups that found an untimely (late) entry.
    PredConsumeUntimely,
    /// Loop visits enqueued for the helper thread.
    VisitEnqueues,
    /// Loop visits dequeued by the helper thread.
    VisitDequeues,
    /// Helper-thread code (HTC) installs at epoch end.
    HtcInstalls,
    /// Pre-execution epochs ended.
    EpochsEnded,
    /// Branch-chain deposits by the runahead engine.
    ChainDeposits,
    /// Branch-chain rollbacks on wrong helper-thread outcomes.
    ChainRollbacks,
    /// L1-D misses.
    L1dMisses,
    /// L2 misses.
    L2Misses,
    /// L3 misses.
    L3Misses,
    /// DRAM accesses.
    DramAccesses,
    /// Loads merged into an in-flight MSHR.
    MshrMerges,
    /// Retries forced by MSHR exhaustion.
    MshrFullRetries,
    /// Stores retired into the memory hierarchy.
    StoresRetired,
    /// Direction-predictor updates.
    BpredUpdates,
    /// Direction-predictor wrong updates.
    BpredWrong,
    /// Region runs served from an architectural checkpoint.
    CkptHits,
    /// Region runs that fast-forwarded (no usable checkpoint).
    CkptMisses,
    /// Nanoseconds spent capturing and writing checkpoints.
    CkptSaveNs,
    /// Nanoseconds spent reading, restoring, and warm-replaying checkpoints.
    CkptRestoreNs,
    /// Fast-forward instructions skipped thanks to checkpoint restores.
    CkptSkippedInsts,
    /// L1-I instruction-fetch misses.
    L1iMisses,
    /// Main-thread fetch cycles stalled on an in-flight L1-I miss.
    IfetchStallCycles,
    /// Cycles of admission delay imposed by the L1-I port.
    L1iPortStalls,
    /// Cycles of admission delay imposed by the L1-D port.
    L1dPortStalls,
    /// Cycles of admission delay imposed by the L2 port.
    L2PortStalls,
    /// Cycles of admission delay imposed by the L3 port.
    L3PortStalls,
    /// Cycles of admission delay imposed by the DRAM queue.
    DramQueueStalls,
    /// Shared (L2+L3) port admission delay charged to tenant 0. In a
    /// solo run this equals `L2PortStalls + L3PortStalls`; in a co-run
    /// the T0/T1 split attributes uncore contention per tenant.
    SharedPortStallsT0,
    /// Shared (L2+L3) port admission delay charged to tenant 1.
    SharedPortStallsT1,
    /// DRAM-queue admission delay charged to tenant 0.
    DramQueueStallsT0,
    /// DRAM-queue admission delay charged to tenant 1.
    DramQueueStallsT1,
}

impl Counter {
    /// Number of counter kinds (array size).
    pub const COUNT: usize = 41;

    /// All counters, in discriminant order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::MtRetired,
        Counter::MtCondBranches,
        Counter::MtMispredicts,
        Counter::MtSquashes,
        Counter::LoadViolations,
        Counter::Triggers,
        Counter::Terminations,
        Counter::PredDeposits,
        Counter::PredConsumeHits,
        Counter::PredConsumeUntimely,
        Counter::VisitEnqueues,
        Counter::VisitDequeues,
        Counter::HtcInstalls,
        Counter::EpochsEnded,
        Counter::ChainDeposits,
        Counter::ChainRollbacks,
        Counter::L1dMisses,
        Counter::L2Misses,
        Counter::L3Misses,
        Counter::DramAccesses,
        Counter::MshrMerges,
        Counter::MshrFullRetries,
        Counter::StoresRetired,
        Counter::BpredUpdates,
        Counter::BpredWrong,
        Counter::CkptHits,
        Counter::CkptMisses,
        Counter::CkptSaveNs,
        Counter::CkptRestoreNs,
        Counter::CkptSkippedInsts,
        Counter::L1iMisses,
        Counter::IfetchStallCycles,
        Counter::L1iPortStalls,
        Counter::L1dPortStalls,
        Counter::L2PortStalls,
        Counter::L3PortStalls,
        Counter::DramQueueStalls,
        Counter::SharedPortStallsT0,
        Counter::SharedPortStallsT1,
        Counter::DramQueueStallsT0,
        Counter::DramQueueStallsT1,
    ];

    /// How this counter combines when two shards' reports merge (see
    /// [`Report::merge`]).
    pub fn merge_kind(self) -> MergeKind {
        // Every current counter is a monotonic event/cycle/nanosecond
        // total, so they all sum. A future high-water-mark counter
        // ("peak X") must declare `MergeKind::Max` here — storing a peak
        // in a summing counter would silently break shard merging.
        MergeKind::Sum
    }

    /// Stable snake_case identifier used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::MtRetired => "mt_retired",
            Counter::MtCondBranches => "mt_cond_branches",
            Counter::MtMispredicts => "mt_mispredicts",
            Counter::MtSquashes => "mt_squashes",
            Counter::LoadViolations => "load_violations",
            Counter::Triggers => "triggers",
            Counter::Terminations => "terminations",
            Counter::PredDeposits => "pred_deposits",
            Counter::PredConsumeHits => "pred_consume_hits",
            Counter::PredConsumeUntimely => "pred_consume_untimely",
            Counter::VisitEnqueues => "visit_enqueues",
            Counter::VisitDequeues => "visit_dequeues",
            Counter::HtcInstalls => "htc_installs",
            Counter::EpochsEnded => "epochs_ended",
            Counter::ChainDeposits => "chain_deposits",
            Counter::ChainRollbacks => "chain_rollbacks",
            Counter::L1dMisses => "l1d_misses",
            Counter::L2Misses => "l2_misses",
            Counter::L3Misses => "l3_misses",
            Counter::DramAccesses => "dram_accesses",
            Counter::MshrMerges => "mshr_merges",
            Counter::MshrFullRetries => "mshr_full_retries",
            Counter::StoresRetired => "stores_retired",
            Counter::BpredUpdates => "bpred_updates",
            Counter::BpredWrong => "bpred_wrong",
            Counter::CkptHits => "ckpt_hits",
            Counter::CkptMisses => "ckpt_misses",
            Counter::CkptSaveNs => "ckpt_save_ns",
            Counter::CkptRestoreNs => "ckpt_restore_ns",
            Counter::CkptSkippedInsts => "ckpt_skipped_insts",
            Counter::L1iMisses => "l1i_misses",
            Counter::IfetchStallCycles => "ifetch_stall_cycles",
            Counter::L1iPortStalls => "l1i_port_stalls",
            Counter::L1dPortStalls => "l1d_port_stalls",
            Counter::L2PortStalls => "l2_port_stalls",
            Counter::L3PortStalls => "l3_port_stalls",
            Counter::DramQueueStalls => "dram_queue_stalls",
            Counter::SharedPortStallsT0 => "shared_port_stalls_t0",
            Counter::SharedPortStallsT1 => "shared_port_stalls_t1",
            Counter::DramQueueStallsT0 => "dram_queue_stalls_t0",
            Counter::DramQueueStallsT1 => "dram_queue_stalls_t1",
        }
    }
}

/// How one aggregate combines across shard reports in
/// [`Report::merge`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeKind {
    /// Totals add (event, cycle, and duration counts).
    Sum,
    /// The larger value wins (peaks / high-water marks).
    Max,
}

/// Occupancy gauges, sampled once per simulated cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Reorder-buffer occupancy.
    RobOccupancy,
    /// Load-store-queue occupancy.
    LsqOccupancy,
    /// Total prediction-queue depth across branches.
    PredQueueDepth,
    /// Visit-queue depth.
    VisitQueueDepth,
    /// L1-D MSHR occupancy.
    MshrOccupancy,
}

impl Gauge {
    /// Number of gauge kinds (array size).
    pub const COUNT: usize = 5;

    /// All gauges, in discriminant order.
    pub const ALL: [Gauge; Gauge::COUNT] = [
        Gauge::RobOccupancy,
        Gauge::LsqOccupancy,
        Gauge::PredQueueDepth,
        Gauge::VisitQueueDepth,
        Gauge::MshrOccupancy,
    ];

    /// Stable snake_case identifier used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::RobOccupancy => "rob_occupancy",
            Gauge::LsqOccupancy => "lsq_occupancy",
            Gauge::PredQueueDepth => "pred_queue_depth",
            Gauge::VisitQueueDepth => "visit_queue_depth",
            Gauge::MshrOccupancy => "mshr_occupancy",
        }
    }
}

/// Log2-bucketed histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Cycles between a pre-execution trigger and its termination.
    TriggerSpanCycles,
    /// Latency of memory accesses that missed in the L1-D.
    MissLatency,
}

impl Hist {
    /// Number of histogram kinds (array size).
    pub const COUNT: usize = 2;

    /// All histograms, in discriminant order.
    pub const ALL: [Hist; Hist::COUNT] = [Hist::TriggerSpanCycles, Hist::MissLatency];

    /// Stable snake_case identifier used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Hist::TriggerSpanCycles => "trigger_span_cycles",
            Hist::MissLatency => "miss_latency",
        }
    }
}

/// Typed events recorded into the bounded ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Pre-execution triggered; `pc` is the delinquent branch/loop PC.
    Trigger,
    /// Pre-execution terminated; `info` is the termination cause code.
    Terminate,
    /// Telemetry epoch closed; `info` is the epoch index.
    EpochEnd,
    /// Helper-thread code installed; `pc` is the loop header.
    HtcInstall,
    /// Main-thread conditional mispredict (verbose only).
    Mispredict,
    /// DRAM access (verbose only); `info` is the latency.
    DramMiss,
    /// MSHR exhaustion retry (verbose only).
    MshrFull,
}

impl EventKind {
    /// Stable snake_case identifier used in exports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Trigger => "trigger",
            EventKind::Terminate => "terminate",
            EventKind::EpochEnd => "epoch_end",
            EventKind::HtcInstall => "htc_install",
            EventKind::Mispredict => "mispredict",
            EventKind::DramMiss => "dram_miss",
            EventKind::MshrFull => "mshr_full",
        }
    }

    /// High-frequency kinds recorded only when [`Config::verbose`] is
    /// set, so structural events survive ring pressure.
    pub fn is_verbose(self) -> bool {
        matches!(
            self,
            EventKind::Mispredict | EventKind::DramMiss | EventKind::MshrFull
        )
    }
}

/// Number of log2 buckets per histogram (covers the full u64 range).
pub const HIST_BUCKETS: usize = 65;

/// A live subscription to epoch samples: the callback runs on the
/// simulating thread, synchronously, the moment each epoch closes —
/// before the sample is appended to the report. This is how long-running
/// consumers (the `phelps-serve` daemon) stream IPC/MPKI series to
/// clients while the simulation is still in flight instead of waiting
/// for the export-at-end [`Report`].
///
/// The callback MUST NOT call any telemetry record function ([`count`],
/// [`gauge`], ...) — it runs while the thread's registry is borrowed,
/// and re-entry would panic. Keep it to channel sends or lock-free
/// bookkeeping.
#[derive(Clone)]
pub struct SampleSink(Arc<dyn Fn(&EpochSample) + Send + Sync>);

impl SampleSink {
    /// Wraps a callback invoked once per closed epoch.
    pub fn new(f: impl Fn(&EpochSample) + Send + Sync + 'static) -> SampleSink {
        SampleSink(Arc::new(f))
    }

    /// Delivers one sample to the subscriber.
    pub fn emit(&self, sample: &EpochSample) {
        (self.0)(sample);
    }
}

impl std::fmt::Debug for SampleSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SampleSink")
    }
}

/// Configuration for an installed registry.
#[derive(Clone, Debug)]
pub struct Config {
    /// Retired main-thread instructions per telemetry epoch.
    pub epoch_len: u64,
    /// Record high-frequency event kinds too.
    pub verbose: bool,
    /// Event-ring capacity; further events only bump `events_dropped`.
    pub ring_capacity: usize,
    /// Free-form run label carried into the report (e.g. "fig11/bfs").
    pub label: String,
    /// Optional live epoch-sample subscription (see [`SampleSink`]).
    pub epoch_sink: Option<SampleSink>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            epoch_len: 10_000,
            verbose: false,
            ring_capacity: 65_536,
            label: String::new(),
            epoch_sink: None,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct GaugeAccum {
    sum: u128,
    samples: u64,
    max: u64,
}

impl GaugeAccum {
    fn record(&mut self, v: u64) {
        self.sum += u128::from(v);
        self.samples += 1;
        if v > self.max {
            self.max = v;
        }
    }

    fn avg(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }
}

/// The per-thread telemetry sink. Usually manipulated through the free
/// functions; constructed directly only in tests.
#[derive(Debug)]
pub struct Registry {
    cfg: Config,
    counters: [u64; Counter::COUNT],
    gauges: [GaugeAccum; Gauge::COUNT],
    epoch_gauges: [GaugeAccum; Gauge::COUNT],
    hists: [[u64; HIST_BUCKETS]; Hist::COUNT],
    hist_totals: [(u64, u128); Hist::COUNT],
    events: Vec<EventRecord>,
    events_dropped: u64,
    epochs: Vec<EpochSample>,
    // Epoch bookkeeping.
    cur_cycle: u64,
    epoch_start_cycle: u64,
    epoch_mark: [u64; Counter::COUNT],
    epoch_retired: u64,
}

impl Registry {
    /// Creates an empty registry for `cfg`.
    pub fn new(cfg: Config) -> Registry {
        Registry {
            cfg,
            counters: [0; Counter::COUNT],
            gauges: [GaugeAccum::default(); Gauge::COUNT],
            epoch_gauges: [GaugeAccum::default(); Gauge::COUNT],
            hists: [[0; HIST_BUCKETS]; Hist::COUNT],
            hist_totals: [(0, 0); Hist::COUNT],
            events: Vec::new(),
            events_dropped: 0,
            epochs: Vec::new(),
            cur_cycle: 0,
            epoch_start_cycle: 0,
            epoch_mark: [0; Counter::COUNT],
            epoch_retired: 0,
        }
    }

    fn add(&mut self, c: Counter, n: u64) {
        self.counters[c as usize] += n;
        if c == Counter::MtRetired && self.cfg.epoch_len > 0 {
            self.epoch_retired += n;
            while self.epoch_retired >= self.cfg.epoch_len {
                self.epoch_retired -= self.cfg.epoch_len;
                self.close_epoch();
            }
        }
    }

    fn tick(&mut self, cycle: u64) {
        self.cur_cycle = cycle;
    }

    fn gauge(&mut self, g: Gauge, v: u64) {
        self.gauges[g as usize].record(v);
        self.epoch_gauges[g as usize].record(v);
    }

    fn hist(&mut self, h: Hist, v: u64) {
        let bucket = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.hists[h as usize][bucket] += 1;
        let (n, sum) = &mut self.hist_totals[h as usize];
        *n += 1;
        *sum += u128::from(v);
    }

    fn event(&mut self, kind: EventKind, cycle: u64, pc: u64, info: u64) {
        if kind.is_verbose() && !self.cfg.verbose {
            return;
        }
        if self.events.len() < self.cfg.ring_capacity {
            self.events.push(EventRecord {
                kind,
                cycle,
                pc,
                info,
            });
        } else {
            self.events_dropped += 1;
        }
    }

    fn delta(&self, c: Counter) -> u64 {
        self.counters[c as usize] - self.epoch_mark[c as usize]
    }

    fn close_epoch(&mut self) {
        let epoch = self.epochs.len() as u64;
        let cycles = self.cur_cycle.saturating_sub(self.epoch_start_cycle);
        let retired = self.delta(Counter::MtRetired);
        let mispredicts = self.delta(Counter::MtMispredicts);
        let ipc = if cycles == 0 {
            0.0
        } else {
            retired as f64 / cycles as f64
        };
        let mpki = if retired == 0 {
            0.0
        } else {
            mispredicts as f64 * 1000.0 / retired as f64
        };
        let sample = EpochSample {
            epoch,
            end_cycle: self.cur_cycle,
            cycles,
            retired,
            ipc,
            mispredicts,
            mpki,
            triggers: self.delta(Counter::Triggers),
            pred_hits: self.delta(Counter::PredConsumeHits),
            dram_accesses: self.delta(Counter::DramAccesses),
            ifetch_stalls: self.delta(Counter::IfetchStallCycles),
            avg_rob: self.epoch_gauges[Gauge::RobOccupancy as usize].avg(),
            avg_pred_queue: self.epoch_gauges[Gauge::PredQueueDepth as usize].avg(),
        };
        if let Some(sink) = &self.cfg.epoch_sink {
            sink.emit(&sample);
        }
        self.epochs.push(sample);
        self.event(EventKind::EpochEnd, self.cur_cycle, 0, epoch);
        self.epoch_mark = self.counters;
        self.epoch_start_cycle = self.cur_cycle;
        self.epoch_gauges = [GaugeAccum::default(); Gauge::COUNT];
    }

    /// Finalizes the registry into an immutable [`Report`]. A trailing
    /// partial epoch (at least one retired instruction) is flushed so
    /// the series covers the whole run.
    pub fn into_report(mut self) -> Report {
        if self.cfg.epoch_len > 0 && self.delta(Counter::MtRetired) > 0 {
            self.close_epoch();
        }
        Report {
            label: self.cfg.label.clone(),
            epoch_len: self.cfg.epoch_len,
            verbose: self.cfg.verbose,
            final_cycle: self.cur_cycle,
            counters: self.counters,
            gauges: Gauge::ALL.map(|g| GaugeSummary {
                sum: self.gauges[g as usize].sum,
                max: self.gauges[g as usize].max,
                samples: self.gauges[g as usize].samples,
            }),
            hists: Hist::ALL.map(|h| HistSummary {
                buckets: self.hists[h as usize].to_vec(),
                count: self.hist_totals[h as usize].0,
                sum: self.hist_totals[h as usize].1,
            }),
            epochs: self.epochs,
            events: self.events,
            events_dropped: self.events_dropped,
        }
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static REGISTRY: RefCell<Option<Box<Registry>>> = const { RefCell::new(None) };
}

/// Installs a fresh registry for this thread, enabling all record
/// functions until [`harvest`] is called. Replaces (and discards) any
/// registry already installed.
pub fn install(cfg: Config) {
    REGISTRY.with(|r| *r.borrow_mut() = Some(Box::new(Registry::new(cfg))));
    ENABLED.with(|e| e.set(true));
}

/// Takes the installed registry, disabling telemetry for this thread,
/// and returns its finalized report. `None` when nothing is installed.
pub fn harvest() -> Option<Box<Report>> {
    ENABLED.with(|e| e.set(false));
    REGISTRY
        .with(|r| r.borrow_mut().take())
        .map(|reg| Box::new(reg.into_report()))
}

/// Whether telemetry is currently installed on this thread. This is the
/// zero-cost guard: a thread-local flag read and one branch.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

fn with_registry(f: impl FnOnce(&mut Registry)) {
    REGISTRY.with(|r| {
        if let Some(reg) = r.borrow_mut().as_mut() {
            f(reg);
        }
    });
}

/// Increments `c` by one.
#[inline]
pub fn count(c: Counter) {
    add(c, 1);
}

/// Increments `c` by `n`.
#[inline]
pub fn add(c: Counter, n: u64) {
    if !enabled() {
        return;
    }
    with_registry(|r| r.add(c, n));
}

/// Advances the registry's notion of the current cycle. Call once per
/// simulated cycle so epoch samples get correct cycle spans.
#[inline]
pub fn tick(cycle: u64) {
    if !enabled() {
        return;
    }
    with_registry(|r| r.tick(cycle));
}

/// Records one occupancy sample for `g`.
#[inline]
pub fn gauge(g: Gauge, v: u64) {
    if !enabled() {
        return;
    }
    with_registry(|r| r.gauge(g, v));
}

/// Records `v` into histogram `h`.
#[inline]
pub fn hist(h: Hist, v: u64) {
    if !enabled() {
        return;
    }
    with_registry(|r| r.hist(h, v));
}

/// Records a typed event. Verbose kinds are dropped unless the
/// installed config set [`Config::verbose`].
#[inline]
pub fn event(kind: EventKind, cycle: u64, pc: u64, info: u64) {
    if !enabled() {
        return;
    }
    with_registry(|r| r.event(kind, cycle, pc, info));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain() {
        let _ = harvest();
    }

    #[test]
    fn disabled_is_inert() {
        drain();
        assert!(!enabled());
        count(Counter::MtRetired);
        gauge(Gauge::RobOccupancy, 10);
        event(EventKind::Trigger, 1, 2, 3);
        assert!(harvest().is_none());
    }

    #[test]
    fn counters_and_events_round_trip() {
        drain();
        install(Config {
            epoch_len: 0,
            ..Config::default()
        });
        assert!(enabled());
        add(Counter::MtRetired, 5);
        count(Counter::Triggers);
        event(EventKind::Trigger, 100, 0x400, 0);
        event(EventKind::Mispredict, 101, 0x404, 0); // verbose: dropped
        let rep = harvest().expect("installed");
        assert!(!enabled());
        assert_eq!(rep.counter(Counter::MtRetired), 5);
        assert_eq!(rep.counter(Counter::Triggers), 1);
        assert_eq!(rep.events.len(), 1);
        assert_eq!(rep.events[0].kind, EventKind::Trigger);
        assert_eq!(rep.events[0].pc, 0x400);
    }

    #[test]
    fn verbose_config_keeps_hot_events() {
        drain();
        install(Config {
            epoch_len: 0,
            verbose: true,
            ..Config::default()
        });
        event(EventKind::Mispredict, 7, 0x8, 0);
        let rep = harvest().unwrap();
        assert_eq!(rep.events.len(), 1);
    }

    #[test]
    fn ring_capacity_bounds_events() {
        drain();
        install(Config {
            epoch_len: 0,
            ring_capacity: 4,
            ..Config::default()
        });
        for i in 0..10 {
            event(EventKind::Trigger, i, 0, 0);
        }
        let rep = harvest().unwrap();
        assert_eq!(rep.events.len(), 4);
        assert_eq!(rep.events_dropped, 6);
    }

    #[test]
    fn epochs_sample_counter_deltas() {
        drain();
        install(Config {
            epoch_len: 10,
            ..Config::default()
        });
        for cycle in 0..50u64 {
            tick(cycle);
            gauge(Gauge::RobOccupancy, 8);
            count(Counter::MtRetired); // 1 IPC exactly
            if cycle % 5 == 0 {
                count(Counter::MtMispredicts);
            }
        }
        let rep = harvest().unwrap();
        assert_eq!(rep.counter(Counter::MtRetired), 50);
        // 50 retired / epoch_len 10 = 5 full epochs, no partial flush.
        assert_eq!(rep.epochs.len(), 5);
        for e in &rep.epochs[1..] {
            assert_eq!(e.retired, 10);
            assert_eq!(e.cycles, 10);
            assert!((e.ipc - 1.0).abs() < 1e-9, "ipc {}", e.ipc);
            assert_eq!(e.mispredicts, 2);
            assert!((e.mpki - 200.0).abs() < 1e-9);
            assert!((e.avg_rob - 8.0).abs() < 1e-9);
        }
        // One EpochEnd event per epoch.
        let ends = rep
            .events
            .iter()
            .filter(|e| e.kind == EventKind::EpochEnd)
            .count();
        assert_eq!(ends, 5);
    }

    #[test]
    fn partial_final_epoch_is_flushed() {
        drain();
        install(Config {
            epoch_len: 10,
            ..Config::default()
        });
        for cycle in 0..13u64 {
            tick(cycle);
            count(Counter::MtRetired);
        }
        let rep = harvest().unwrap();
        assert_eq!(rep.epochs.len(), 2);
        assert_eq!(rep.epochs[1].retired, 3);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        drain();
        install(Config {
            epoch_len: 0,
            ..Config::default()
        });
        hist(Hist::MissLatency, 0); // bucket 0
        hist(Hist::MissLatency, 1); // bucket 1
        hist(Hist::MissLatency, 2); // bucket 2
        hist(Hist::MissLatency, 3); // bucket 2
        hist(Hist::MissLatency, 1024); // bucket 11
        hist(Hist::MissLatency, u64::MAX); // bucket 64
        let rep = harvest().unwrap();
        let h = &rep.hists[Hist::MissLatency as usize];
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[11], 1);
        assert_eq!(h.buckets[64], 1);
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, (1 + 2 + 3 + 1024) as u128 + u64::MAX as u128);
    }

    #[test]
    fn epoch_sink_streams_samples_live() {
        use std::sync::Mutex;
        drain();
        let seen: Arc<Mutex<Vec<EpochSample>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = Arc::clone(&seen);
        install(Config {
            epoch_len: 10,
            epoch_sink: Some(SampleSink::new(move |s| {
                sink_seen.lock().unwrap().push(s.clone());
            })),
            ..Config::default()
        });
        for cycle in 0..25u64 {
            tick(cycle);
            count(Counter::MtRetired);
            // The sink must observe epochs as they close, not at harvest.
            if cycle == 12 {
                assert_eq!(seen.lock().unwrap().len(), 1, "first epoch streamed live");
            }
        }
        let rep = harvest().unwrap();
        // 2 full epochs + 1 flushed partial, all streamed, same contents.
        assert_eq!(rep.epochs.len(), 3);
        assert_eq!(*seen.lock().unwrap(), rep.epochs);
    }

    #[test]
    fn reinstall_discards_previous() {
        drain();
        install(Config::default());
        count(Counter::Triggers);
        install(Config::default());
        let rep = harvest().unwrap();
        assert_eq!(rep.counter(Counter::Triggers), 0);
    }

    #[test]
    fn enum_tables_are_consistent() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "counter {} out of order", c.name());
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i, "gauge {} out of order", g.name());
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i, "hist {} out of order", h.name());
        }
    }
}
