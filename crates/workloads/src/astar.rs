//! An astar-like grid-expansion kernel (the `makebound2` idiom, paper
//! Fig. 3).
//!
//! A worklist of grid cells is scanned; for each cell, all eight neighbors
//! are tested. Per neighbor there is a **pair of dependent delinquent
//! branches**: `b_odd` tests the neighbor's `waymap` fill state (a load of
//! arbitrary grid data — hard to predict) and, when it passes, `b_even`
//! tests a second data-dependent condition; when that passes too, a store
//! marks the neighbor's `waymap` entry and appends it to the output
//! worklist. The stores **influence later instances of the odd branches**
//! (a loop-carried store→load dependence through `waymap`) and are
//! **control-dependent** on both branches of their pair — exactly the
//! b1→b2→s1 structure the paper analyzes.
//!
//! Guest memory layout:
//!
//! * `ARRAY_A`: `waymap[cells]` fill state (8 bytes per cell),
//! * `ARRAY_B`: input worklist of cell indices,
//! * `ARRAY_C`: output worklist,
//! * `ARRAY_D`: per-cell cost field tested by the even branches,
//! * `SCRATCH`: output tail counter.

use crate::graph::layout;
use phelps_isa::{Asm, Cpu, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the astar-like kernel.
#[derive(Clone, Debug)]
pub struct AstarParams {
    /// Grid side length (cells = side²).
    pub side: usize,
    /// Number of worklist entries to process.
    pub worklist: usize,
    /// RNG seed for the initial fill state and costs.
    pub seed: u64,
}

impl Default for AstarParams {
    fn default() -> AstarParams {
        AstarParams {
            // Non-power-of-two pitch, like real map grids: a power-of-two
            // side makes same-column cells alias into one store-cache set
            // ((r*256+c) mod 16 == c mod 16), artificially thrashing the
            // helper thread's 16-set speculative cache.
            side: 257,
            worklist: 30_000,
            seed: 0xa57a,
        }
    }
}

/// Builds the prepared CPU for the astar-like kernel.
///
/// Register conventions inside the loop:
/// `s0` = waymap base, `s1` = input worklist base, `s2` = output base,
/// `s3` = cost base, `s4` = loop index, `s5` = worklist length,
/// `s6` = output tail, `s7` = side, `t*`/`a*` = scratch.
pub fn astar_grid(params: &AstarParams) -> Cpu {
    let side = params.side as i64;
    let mut a = Asm::new(0x10000);

    // Neighbor offsets of the 8 surrounding cells (as in makebound2's
    // eight index1 computations).
    let offsets: [i64; 8] = [1, -1, side, -side, side + 1, side - 1, -side + 1, -side - 1];

    a.label("outer");
    // Per-iteration search state (stands in for astar's mutating
    // cost/bound state): a register LCG advanced once per worklist
    // element. The even branches mix it into their tests, making them
    // data-dependent per dynamic instance — as delinquent as the odd ones.
    a.li(Reg::T6, 0x5851_f42d);
    a.mul(Reg::S7, Reg::S7, Reg::T6);
    a.addi(Reg::S7, Reg::S7, 12345);
    // index = worklist[s4]
    a.slli(Reg::T0, Reg::S4, 3);
    a.add(Reg::T0, Reg::S1, Reg::T0);
    a.ld(Reg::A0, Reg::T0, 0); // a0 = index

    for (k, off) in offsets.iter().enumerate() {
        let skip = format!("skip{k}");
        // index1 = index + offset
        a.li(Reg::T1, *off);
        a.add(Reg::A1, Reg::A0, Reg::T1); // a1 = index1
                                          // waymap[index1] load → b_odd
        a.slli(Reg::T2, Reg::A1, 3);
        a.add(Reg::T2, Reg::S0, Reg::T2); // t2 = &waymap[index1]
        a.ld(Reg::T3, Reg::T2, 0); // t3 = waymap[index1].fillnum
        a.bne(Reg::T3, Reg::ZERO, &skip); // b_odd: already filled → skip
                                          // cost test → b_even (cost mixed with the mutating search state)
        a.slli(Reg::T4, Reg::A1, 3);
        a.add(Reg::T4, Reg::S3, Reg::T4);
        a.ld(Reg::T5, Reg::T4, 0); // t5 = cost[index1]
        a.xor(Reg::T5, Reg::T5, Reg::S7);
        a.srli(Reg::T5, Reg::T5, 7);
        a.andi(Reg::T5, Reg::T5, 3);
        a.beq(Reg::T5, Reg::ZERO, &skip); // b_even: cost rejects (~25%) → skip
                                          // s_k: waymap[index1].fillnum = 1 (influences future b_odd).
        a.li(Reg::T6, 1);
        a.sd(Reg::T6, Reg::T2, 0);
        // Append to the output worklist.
        a.slli(Reg::A2, Reg::S6, 3);
        a.add(Reg::A2, Reg::S2, Reg::A2);
        a.sd(Reg::A1, Reg::A2, 0);
        a.addi(Reg::S6, Reg::S6, 1);
        // "Other statements" in the accepted block (paper Fig. 3 line 15):
        // bookkeeping outside every delinquent-branch slice.
        a.add(Reg::S8, Reg::S8, Reg::A1);
        a.xor(Reg::S9, Reg::S9, Reg::A1);
        a.addi(Reg::S10, Reg::S10, 1);
        a.or(Reg::S11, Reg::S11, Reg::S9);
        a.label(&skip);
    }

    // "Other statements": bookkeeping outside every branch slice.
    a.add(Reg::A3, Reg::A3, Reg::A0);
    a.xor(Reg::A4, Reg::A4, Reg::A3);
    a.slli(Reg::A5, Reg::A3, 1);
    a.add(Reg::A6, Reg::A6, Reg::A5);
    a.andi(Reg::A7, Reg::A4, 1023);
    a.or(Reg::A6, Reg::A6, Reg::A7);
    a.add(Reg::A3, Reg::A3, Reg::A7);
    a.xor(Reg::A4, Reg::A4, Reg::A6);

    a.addi(Reg::S4, Reg::S4, 1);
    a.bltu(Reg::S4, Reg::S5, "outer");
    // Bound-generation boundary (makebound2 returns; the caller swaps the
    // bound lists and calls it again): accepted neighbors become the next
    // worklist.
    a.li(Reg::T0, layout::SCRATCH as i64);
    a.ld(Reg::T1, Reg::T0, 8); // processed-cells budget
    a.add(Reg::T2, Reg::T2, Reg::S5);
    a.sub(Reg::T1, Reg::T1, Reg::S5);
    a.sd(Reg::T1, Reg::T0, 8);
    a.blt(Reg::T1, Reg::ZERO, "done");
    a.beq(Reg::S6, Reg::ZERO, "done");
    a.mv(Reg::A2, Reg::S1);
    a.mv(Reg::S1, Reg::S2);
    a.mv(Reg::S2, Reg::A2);
    a.mv(Reg::S5, Reg::S6);
    a.li(Reg::S6, 0);
    a.li(Reg::S4, 0);
    a.j("outer");
    a.label("done");
    // Persist the output tail.
    a.li(Reg::T0, layout::SCRATCH as i64);
    a.sd(Reg::S6, Reg::T0, 0);
    a.halt();

    let prog = a.assemble().expect("astar kernel assembles");
    let mut cpu = Cpu::new(prog);

    // Initialize guest data.
    let side = params.side;
    let cells = (side * side) as u64;
    let mut rng = SmallRng::seed_from_u64(params.seed);
    // waymap: ~35% pre-filled obstacles so the expanding bound meets an
    // irregular fill boundary (b_odd outcomes stay data-dependent);
    // borders are sentinel-filled so the wavefront cannot escape the grid.
    for c in 0..cells {
        let r = c as usize / side;
        let col = c as usize % side;
        let border = r == 0 || col == 0 || r == side - 1 || col == side - 1;
        let filled = border || rng.gen_range(0..100) < 35;
        cpu.mem.write_u64(layout::ARRAY_A + 8 * c, filled as u64);
        // cost: arbitrary values mixed with mutable search state by b_even.
        cpu.mem
            .write_u64(layout::ARRAY_D + 8 * c, rng.gen_range(0..1_000_000));
    }
    // Seed worklist: a scattering of start cells near the center. Each
    // generation's accepted neighbors become the next worklist (bound
    // expansion), so consecutive entries are spatially adjacent and their
    // eight-neighborhoods overlap — the wavefront behavior that makes the
    // `waymap` stores influence `b_odd` loads a few iterations later
    // (the paper's loop-carried store→load dependence, varying distance).
    let mut seeds = 0u64;
    let mid = side / 2;
    for dr in -2i64..=2 {
        for dc in -2i64..=2 {
            let r = (mid as i64 + dr * 3) as usize;
            let c = (mid as i64 + dc * 3) as usize;
            let cell = (r * side + c) as u64;
            cpu.mem.write_u64(layout::ARRAY_B + 8 * seeds, cell);
            cpu.mem.write_u64(layout::ARRAY_A + 8 * cell, 1); // seed is filled
            seeds += 1;
        }
    }
    // Processed-cells budget bounds the run length.
    cpu.mem
        .write_u64(layout::SCRATCH + 8, params.worklist as u64);

    cpu.set_reg(Reg::S0, layout::ARRAY_A);
    cpu.set_reg(Reg::S1, layout::ARRAY_B);
    cpu.set_reg(Reg::S2, layout::ARRAY_C);
    cpu.set_reg(Reg::S3, layout::ARRAY_D);
    cpu.set_reg(Reg::S4, 0);
    cpu.set_reg(Reg::S5, seeds);
    cpu.set_reg(Reg::S6, 0);
    cpu.set_reg(Reg::S7, params.seed | 1); // LCG search-state seed
    cpu
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(params: &AstarParams) -> Cpu {
        let mut cpu = astar_grid(params);
        cpu.run(100_000_000).unwrap();
        assert!(cpu.is_halted(), "kernel halts");
        cpu
    }

    #[test]
    fn kernel_expands_a_bound_wavefront() {
        let cpu = run(&AstarParams {
            side: 65,
            worklist: 2_000,
            seed: 7,
        });
        // s10 counts accepted neighbors across all generations.
        let accepted = cpu.reg(Reg::S10);
        assert!(accepted > 500, "the bound expands: {accepted}");
        assert!(
            accepted < 65 * 65,
            "acceptances bounded by the grid: {accepted}"
        );
    }

    #[test]
    fn stores_prevent_reacceptance() {
        // Every accepted cell is marked filled, so the total number of
        // acceptances can never exceed the number of initially-unfilled
        // cells (the loop-carried store→load dependence is live).
        let params = AstarParams {
            side: 65,
            worklist: 50_000,
            seed: 9,
        };
        let cpu = run(&params);
        let cells = (params.side * params.side) as u64;
        let mut unfilled_initially = 0;
        // Recount with the generator's stream.
        let mut rng = SmallRng::seed_from_u64(params.seed);
        for c in 0..cells {
            let r = c as usize / params.side;
            let col = c as usize % params.side;
            let border = r == 0 || col == 0 || r == params.side - 1 || col == params.side - 1;
            let filled = rng.gen_range(0..100) < 35;
            let _ = rng.gen_range(0..1_000_000u64);
            if !border && !filled {
                unfilled_initially += 1;
            }
        }
        let accepted = cpu.reg(Reg::S10);
        assert!(
            accepted <= unfilled_initially,
            "acceptances {accepted} bounded by unfilled {unfilled_initially}"
        );
        // Every accepted cell is now marked in waymap.
        let mut marked = 0u64;
        for c in 0..cells {
            if cpu.mem.read_u64(layout::ARRAY_A + 8 * c) != 0 {
                marked += 1;
            }
        }
        assert!(marked >= accepted, "marks cover acceptances");
    }

    #[test]
    fn deterministic_given_seed() {
        let p = AstarParams {
            side: 65,
            worklist: 1_000,
            seed: 11,
        };
        let mut a = astar_grid(&p);
        let mut b = astar_grid(&p);
        a.run(100_000_000).unwrap();
        b.run(100_000_000).unwrap();
        assert_eq!(a.reg(Reg::S10), b.reg(Reg::S10));
        assert_eq!(a.retired(), b.retired());
        // Different seeds give different expansions.
        let mut c = astar_grid(&AstarParams { seed: 12, ..p });
        c.run(100_000_000).unwrap();
        assert_ne!(a.reg(Reg::S10), c.reg(Reg::S10));
    }

    #[test]
    fn budget_bounds_the_run() {
        let small = run(&AstarParams {
            side: 129,
            worklist: 500,
            seed: 3,
        });
        let large = run(&AstarParams {
            side: 129,
            worklist: 5_000,
            seed: 3,
        });
        assert!(large.retired() > small.retired() * 2);
    }
}
