//! # phelps-workloads
//!
//! Guest-assembly workload kernels and synthetic graph generators for the
//! Phelps reproduction.
//!
//! * [`astar`] — the `makebound2`-like grid-expansion kernel with the
//!   b1→b2→s1 dependent-branch/store structure (paper Fig. 3);
//! * [`gap`] — GAP-style graph kernels (`bfs`, `bc`, `pr`, `cc`, `cc_sv`,
//!   `sssp`) over synthetic road-network / power-law / uniform graphs;
//! * [`spec`] — SPEC2017-like idiom kernels, one per Fig. 14
//!   misprediction category;
//! * [`graph`] — CSR graphs, generators, and the guest memory layout;
//! * [`simpoints`] — SimPoint-style representative-region selection
//!   (interval BBVs + k-means), the paper's evaluation methodology.
//!
//! Every kernel returns a prepared [`phelps_isa::Cpu`] (program + data +
//! entry registers) ready to hand to `phelps::sim::simulate`.
//!
//! ```
//! use phelps_workloads::{suite, Workload};
//!
//! let w: Workload = suite::astar_small();
//! assert_eq!(w.name, "astar");
//! assert!(!w.cpu.is_halted());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod astar;
pub mod gap;
pub mod graph;
pub mod simpoints;
pub mod spec;

use phelps_isa::Cpu;

/// A named, prepared workload.
#[derive(Debug)]
pub struct Workload {
    /// Benchmark name as used in the paper's figures.
    pub name: &'static str,
    /// Prepared guest CPU.
    pub cpu: Cpu,
}

/// Prepared workload suites at experiment scale.
pub mod suite {
    use super::*;
    use crate::graph::{Graph, GraphKind};

    /// Default graph size for GAP kernels at experiment scale.
    pub const GAP_VERTICES: usize = 40_000;
    /// Seed shared by the suite for reproducibility.
    pub const SEED: u64 = 0x9a9;

    /// The road-network input used by default (roadNet-CA-like).
    pub fn road_graph() -> Graph {
        Graph::generate(GraphKind::RoadNetwork, GAP_VERTICES, SEED)
    }

    /// astar at experiment scale.
    pub fn astar() -> Workload {
        Workload {
            name: "astar",
            cpu: astar::astar_grid(&astar::AstarParams::default()),
        }
    }

    /// astar at unit-test scale.
    pub fn astar_small() -> Workload {
        Workload {
            name: "astar",
            cpu: astar::astar_grid(&astar::AstarParams {
                side: 64,
                worklist: 4_000,
                seed: 0xa57a,
            }),
        }
    }

    /// bfs on the road network.
    pub fn bfs() -> Workload {
        Workload {
            name: "bfs",
            cpu: gap::bfs(&road_graph(), 0),
        }
    }

    /// bfs on an arbitrary graph (Fig. 15b input study).
    pub fn bfs_on(kind: GraphKind, n: usize) -> Workload {
        Workload {
            name: "bfs",
            cpu: gap::bfs(&Graph::generate(kind, n, SEED), 0),
        }
    }

    /// A seeded uniform-random (Erdős–Rényi-style) graph: the first
    /// slice of the Fig. 15b input study, and the memory-intensive
    /// contending neighbor used by the `fig_corun` co-run sweep.
    pub fn uniform_graph(n: usize, seed: u64) -> Graph {
        Graph::generate(GraphKind::Uniform, n, seed)
    }

    /// bfs on a seeded uniform-random graph (factory name
    /// `bfs_uniform`). Unlike [`bfs_on`], the seed is a parameter, so
    /// co-run experiments can contend against an input decorrelated from
    /// the suite's shared [`SEED`].
    pub fn uniform_bfs(n: usize, seed: u64) -> Workload {
        Workload {
            name: "bfs_uniform",
            cpu: gap::bfs(&uniform_graph(n, seed), 0),
        }
    }

    /// bc (forward phase) on the road network.
    pub fn bc() -> Workload {
        Workload {
            name: "bc",
            cpu: gap::bc(&road_graph(), 0),
        }
    }

    /// pr on the road network.
    pub fn pr() -> Workload {
        Workload {
            name: "pr",
            cpu: gap::pr(&road_graph(), 4),
        }
    }

    /// cc (label propagation) on the road network.
    pub fn cc() -> Workload {
        Workload {
            name: "cc",
            cpu: gap::cc(&road_graph(), 24),
        }
    }

    /// cc_sv (Shiloach–Vishkin-style) on the road network.
    pub fn cc_sv() -> Workload {
        Workload {
            name: "cc_sv",
            cpu: gap::cc_sv(&road_graph(), 24),
        }
    }

    /// sssp (Bellman–Ford sweeps) on the road network.
    pub fn sssp() -> Workload {
        Workload {
            name: "sssp",
            cpu: gap::sssp(&road_graph(), 0, 48, SEED),
        }
    }

    /// tc (triangle counting) on the road network.
    pub fn tc() -> Workload {
        Workload {
            name: "tc",
            cpu: gap::tc(&road_graph()),
        }
    }

    /// Names of the GAP + astar benchmarks of Figs. 12/13, in figure order.
    pub fn gap_names() -> &'static [&'static str] {
        &["bc", "bfs", "pr", "cc", "cc_sv", "sssp", "tc", "astar"]
    }

    /// Builds a single GAP-suite workload by name, without constructing the
    /// rest of the suite.
    pub fn gap_workload(name: &str) -> Option<Workload> {
        Some(match name {
            "bc" => bc(),
            "bfs" => bfs(),
            "pr" => pr(),
            "cc" => cc(),
            "cc_sv" => cc_sv(),
            "sssp" => sssp(),
            "tc" => tc(),
            "astar" => astar(),
            // Input-study extra (not part of the Figs. 12/13 suite):
            // bfs on the seeded uniform-random graph.
            "bfs_uniform" => uniform_bfs(GAP_VERTICES, SEED),
            _ => return None,
        })
    }

    /// The GAP + astar benchmarks of Figs. 12/13.
    pub fn gap_suite() -> Vec<Workload> {
        gap_names()
            .iter()
            .map(|n| gap_workload(n).expect("known name"))
            .collect()
    }

    /// Names of the SPEC2017-like idiom kernels of Figs. 12a/14, in figure
    /// order.
    pub fn spec_names() -> &'static [&'static str] {
        &[
            "mcf",
            "leela",
            "omnetpp",
            "exchange2",
            "xz",
            "gcc",
            "x264",
            "deepsjeng",
            "perlbench",
            "xalanc",
        ]
    }

    /// Builds a single SPEC-suite workload by name, without constructing the
    /// other nine (each build runs the functional emulator, so rebuilding
    /// the whole suite per lookup is quadratic work).
    pub fn spec_workload(name: &str) -> Option<Workload> {
        let cpu = match name {
            "mcf" => spec::mcf_like(400_000, SEED),
            "leela" => spec::leela_like(60_000, 24, SEED),
            "omnetpp" => spec::omnetpp_like(15_000, 30, SEED),
            "exchange2" => spec::exchange2_like(6_000),
            "xz" => spec::xz_like(120_000, 3, SEED),
            "gcc" => spec::gcc_like(600, 80, SEED),
            "x264" => spec::x264_like(150_000),
            "deepsjeng" => spec::deepsjeng_like(30_000, SEED),
            "perlbench" => spec::perlbench_like(300_000, SEED),
            "xalanc" => spec::xalanc_like(4_096, 60_000, SEED),
            _ => return None,
        };
        let name = spec_names().iter().find(|n| **n == name)?;
        Some(Workload { name, cpu })
    }

    /// The SPEC2017-like idiom kernels of Figs. 12a/14.
    pub fn spec_suite() -> Vec<Workload> {
        spec_names()
            .iter()
            .map(|n| spec_workload(n).expect("known name"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_prepare_without_running() {
        assert_eq!(suite::gap_suite().len(), 8);
        assert_eq!(suite::spec_suite().len(), 10);
    }

    #[test]
    fn per_name_factories_cover_both_suites() {
        for n in suite::gap_names() {
            let w = suite::gap_workload(n).expect("gap name resolves");
            assert_eq!(w.name, *n);
        }
        for n in suite::spec_names() {
            let w = suite::spec_workload(n).expect("spec name resolves");
            assert_eq!(w.name, *n);
        }
        assert!(suite::gap_workload("nope").is_none());
        assert!(suite::spec_workload("nope").is_none());
    }

    #[test]
    fn names_are_unique_within_each_suite() {
        let names: Vec<&str> = suite::gap_suite().iter().map(|w| w.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn uniform_bfs_is_seeded_and_in_the_factory() {
        let a = suite::uniform_graph(2_000, 7);
        let b = suite::uniform_graph(2_000, 7);
        let c = suite::uniform_graph(2_000, 8);
        assert_eq!(a.num_edges(), b.num_edges(), "same seed, same graph");
        assert!(
            (0..a.num_vertices()).all(|v| a.neighbors_of(v) == b.neighbors_of(v)),
            "same seed, same adjacency"
        );
        assert!(
            a.num_edges() != c.num_edges()
                || (0..a.num_vertices()).any(|v| a.neighbors_of(v) != c.neighbors_of(v)),
            "seed changes the input graph"
        );
        let w = suite::gap_workload("bfs_uniform").expect("factory entry");
        assert_eq!(w.name, "bfs_uniform");
        assert!(
            !suite::gap_names().contains(&"bfs_uniform"),
            "input-study extra must not join the Figs. 12/13 sweep"
        );
    }
}
