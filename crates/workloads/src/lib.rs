//! # phelps-workloads
//!
//! Guest-assembly workload kernels and synthetic graph generators for the
//! Phelps reproduction.
//!
//! * [`astar`] — the `makebound2`-like grid-expansion kernel with the
//!   b1→b2→s1 dependent-branch/store structure (paper Fig. 3);
//! * [`gap`] — GAP-style graph kernels (`bfs`, `bc`, `pr`, `cc`, `cc_sv`,
//!   `sssp`) over synthetic road-network / power-law / uniform graphs;
//! * [`spec`] — SPEC2017-like idiom kernels, one per Fig. 14
//!   misprediction category;
//! * [`graph`] — CSR graphs, generators, and the guest memory layout;
//! * [`simpoints`] — SimPoint-style representative-region selection
//!   (interval BBVs + k-means), the paper's evaluation methodology.
//!
//! Every kernel returns a prepared [`phelps_isa::Cpu`] (program + data +
//! entry registers) ready to hand to `phelps::sim::simulate`.
//!
//! ```
//! use phelps_workloads::{suite, Workload};
//!
//! let w: Workload = suite::astar_small();
//! assert_eq!(w.name, "astar");
//! assert!(!w.cpu.is_halted());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod astar;
pub mod gap;
pub mod graph;
pub mod simpoints;
pub mod spec;

use phelps_isa::Cpu;

/// A named, prepared workload.
#[derive(Debug)]
pub struct Workload {
    /// Benchmark name as used in the paper's figures.
    pub name: &'static str,
    /// Prepared guest CPU.
    pub cpu: Cpu,
}

/// Prepared workload suites at experiment scale.
pub mod suite {
    use super::*;
    use crate::graph::{Graph, GraphKind};

    /// Default graph size for GAP kernels at experiment scale.
    pub const GAP_VERTICES: usize = 40_000;
    /// Seed shared by the suite for reproducibility.
    pub const SEED: u64 = 0x9a9;

    /// The road-network input used by default (roadNet-CA-like).
    pub fn road_graph() -> Graph {
        Graph::generate(GraphKind::RoadNetwork, GAP_VERTICES, SEED)
    }

    /// astar at experiment scale.
    pub fn astar() -> Workload {
        Workload {
            name: "astar",
            cpu: astar::astar_grid(&astar::AstarParams::default()),
        }
    }

    /// astar at unit-test scale.
    pub fn astar_small() -> Workload {
        Workload {
            name: "astar",
            cpu: astar::astar_grid(&astar::AstarParams {
                side: 64,
                worklist: 4_000,
                seed: 0xa57a,
            }),
        }
    }

    /// bfs on the road network.
    pub fn bfs() -> Workload {
        Workload {
            name: "bfs",
            cpu: gap::bfs(&road_graph(), 0),
        }
    }

    /// bfs on an arbitrary graph (Fig. 15b input study).
    pub fn bfs_on(kind: GraphKind, n: usize) -> Workload {
        Workload {
            name: "bfs",
            cpu: gap::bfs(&Graph::generate(kind, n, SEED), 0),
        }
    }

    /// bc (forward phase) on the road network.
    pub fn bc() -> Workload {
        Workload {
            name: "bc",
            cpu: gap::bc(&road_graph(), 0),
        }
    }

    /// pr on the road network.
    pub fn pr() -> Workload {
        Workload {
            name: "pr",
            cpu: gap::pr(&road_graph(), 4),
        }
    }

    /// cc (label propagation) on the road network.
    pub fn cc() -> Workload {
        Workload {
            name: "cc",
            cpu: gap::cc(&road_graph(), 24),
        }
    }

    /// cc_sv (Shiloach–Vishkin-style) on the road network.
    pub fn cc_sv() -> Workload {
        Workload {
            name: "cc_sv",
            cpu: gap::cc_sv(&road_graph(), 24),
        }
    }

    /// sssp (Bellman–Ford sweeps) on the road network.
    pub fn sssp() -> Workload {
        Workload {
            name: "sssp",
            cpu: gap::sssp(&road_graph(), 0, 48, SEED),
        }
    }

    /// tc (triangle counting) on the road network.
    pub fn tc() -> Workload {
        Workload {
            name: "tc",
            cpu: gap::tc(&road_graph()),
        }
    }

    /// The GAP + astar benchmarks of Figs. 12/13.
    pub fn gap_suite() -> Vec<Workload> {
        vec![bc(), bfs(), pr(), cc(), cc_sv(), sssp(), tc(), astar()]
    }

    /// The SPEC2017-like idiom kernels of Figs. 12a/14.
    pub fn spec_suite() -> Vec<Workload> {
        vec![
            Workload {
                name: "mcf",
                cpu: spec::mcf_like(400_000, SEED),
            },
            Workload {
                name: "leela",
                cpu: spec::leela_like(60_000, 24, SEED),
            },
            Workload {
                name: "omnetpp",
                cpu: spec::omnetpp_like(15_000, 30, SEED),
            },
            Workload {
                name: "exchange2",
                cpu: spec::exchange2_like(6_000),
            },
            Workload {
                name: "xz",
                cpu: spec::xz_like(120_000, 3, SEED),
            },
            Workload {
                name: "gcc",
                cpu: spec::gcc_like(600, 80, SEED),
            },
            Workload {
                name: "x264",
                cpu: spec::x264_like(150_000),
            },
            Workload {
                name: "deepsjeng",
                cpu: spec::deepsjeng_like(30_000, SEED),
            },
            Workload {
                name: "perlbench",
                cpu: spec::perlbench_like(300_000, SEED),
            },
            Workload {
                name: "xalanc",
                cpu: spec::xalanc_like(4_096, 60_000, SEED),
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_prepare_without_running() {
        assert_eq!(suite::gap_suite().len(), 8);
        assert_eq!(suite::spec_suite().len(), 10);
    }

    #[test]
    fn names_are_unique_within_each_suite() {
        let names: Vec<&str> = suite::gap_suite().iter().map(|w| w.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
