//! SPEC2017-like idiom kernels.
//!
//! The paper's Fig. 14 explains *why* Phelps rarely activates on SPEC2017:
//! each benchmark falls into a characteristic misprediction bin. We write
//! one parameterized kernel per idiom so the classification machinery can
//! be exercised end to end. These are synthetic kernels engineered to land
//! in the corresponding bin — not ports of the benchmarks.
//!
//! | kernel | idiom | expected dominant bin |
//! |---|---|---|
//! | [`mcf_like`] | delinquent branch inside a non-inlined callee | `del. but not in loop` |
//! | [`leela_like`] | MPKI spread over many individually-cold branches | `not delinquent` |
//! | [`omnetpp_like`] | delinquent branch whose whole loop body feeds it | `del. but ht too big` |
//! | [`exchange2_like`] | deeply predictable control | (almost no mispredictions) |
//! | [`xz_like`] | delinquent loop visited for ~3 iterations at a time | `del. but not iterating enough` |
//! | [`gcc_like`] | enough static branches to thrash the 256-entry DBT | `gathering delinquency` |
//! | [`x264_like`] | streaming memory-bound, predictable branches | (not branch-limited) |
//! | [`deepsjeng_like`] | delinquent branch in a large search-evaluation body | `del. but ht too big` |
//! | [`perlbench_like`] | mostly predictable interpreter dispatch | `not delinquent` (low MPKI) |
//! | [`xalanc_like`] | pointer-chasing tree walk, mispredictions spread thin | `not delinquent` |

use crate::graph::layout;
use phelps_isa::{Asm, Cpu, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_data(cpu: &mut Cpu, base: u64, n: u64, seed: u64, modulo: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..n {
        cpu.mem.write_u64(base + 8 * i, rng.gen::<u64>() % modulo);
    }
}

/// A loop that calls a non-inlined helper function containing the
/// delinquent branch. The branch's PC lies outside the loop's contiguous
/// bounds, so the DBT never finds an enclosing loop for it (the paper's
/// mcf observation).
pub fn mcf_like(elems: u64, seed: u64) -> Cpu {
    let mut a = Asm::new(0x10000);
    // a0=data base, a1=i, a2=n, a3=acc
    a.label("loop");
    a.slli(Reg::T0, Reg::A1, 3);
    a.add(Reg::T0, Reg::A0, Reg::T0);
    a.ld(Reg::T1, Reg::T0, 0);
    a.call("helper"); // branch lives here, outside the loop bounds
    a.add(Reg::A3, Reg::A3, Reg::A4);
    a.addi(Reg::A1, Reg::A1, 1);
    a.bne(Reg::A1, Reg::A2, "loop");
    a.halt();
    // Non-inlined callee: PCs above the loop.
    a.label("helper");
    a.andi(Reg::T2, Reg::T1, 1);
    a.li(Reg::A4, 0);
    a.beq(Reg::T2, Reg::ZERO, "even"); // delinquent, not-in-loop
    a.li(Reg::A4, 3);
    a.label("even");
    a.ret();

    let mut cpu = Cpu::new(a.assemble().expect("assembles"));
    random_data(&mut cpu, layout::ARRAY_A, elems, seed, u64::MAX);
    cpu.set_reg(Reg::A0, layout::ARRAY_A);
    cpu.set_reg(Reg::A2, elems);
    cpu
}

/// Mispredictions spread across many branches, none individually clearing
/// the 0.5-MPKI delinquency bar: each branch is strongly biased (taken a
/// few percent of the time on random data), so its absolute misprediction
/// count stays small while the aggregate MPKI is significant.
pub fn leela_like(elems: u64, branches: usize, seed: u64) -> Cpu {
    let mut a = Asm::new(0x10000);
    a.label("loop");
    a.slli(Reg::T0, Reg::A1, 3);
    a.add(Reg::T0, Reg::A0, Reg::T0);
    a.ld(Reg::T1, Reg::T0, 0);
    a.ld(Reg::T5, Reg::T0, 8);
    // A long chain of rarely-taken branches selected by data bits.
    for k in 0..branches {
        let skip = format!("s{k}");
        let src = if k % 2 == 0 { Reg::T1 } else { Reg::T5 };
        a.srli(Reg::T2, src, (k % 40) as i32);
        a.andi(Reg::T2, Reg::T2, 0x1f);
        a.bne(Reg::T2, Reg::ZERO, &skip); // taken ~3% of the time
        a.addi(Reg::A3, Reg::A3, 1);
        a.label(&skip);
    }
    a.addi(Reg::A1, Reg::A1, 1);
    a.bne(Reg::A1, Reg::A2, "loop");
    a.halt();

    let mut cpu = Cpu::new(a.assemble().expect("assembles"));
    random_data(&mut cpu, layout::ARRAY_A, 2 * elems + 2, seed, u64::MAX);
    cpu.set_reg(Reg::A0, layout::ARRAY_A);
    cpu.set_reg(Reg::A2, elems);
    cpu
}

/// One delinquent branch whose backward slice spans essentially the whole
/// (large) loop body: the constructed helper thread violates the 75% size
/// bound.
pub fn omnetpp_like(elems: u64, chain: usize, seed: u64) -> Cpu {
    let mut a = Asm::new(0x10000);
    a.label("loop");
    a.slli(Reg::T0, Reg::A1, 3);
    a.add(Reg::T0, Reg::A0, Reg::T0);
    a.ld(Reg::T1, Reg::T0, 0);
    // Long dependent computation, all of it feeding the branch.
    for _ in 0..chain {
        a.xor(Reg::T1, Reg::T1, Reg::A1);
        a.slli(Reg::T2, Reg::T1, 1);
        a.add(Reg::T1, Reg::T1, Reg::T2);
        a.srli(Reg::T2, Reg::T1, 7);
        a.xor(Reg::T1, Reg::T1, Reg::T2);
    }
    a.andi(Reg::T3, Reg::T1, 1);
    a.beq(Reg::T3, Reg::ZERO, "skip"); // delinquent; slice == body
    a.addi(Reg::A3, Reg::A3, 1);
    a.label("skip");
    a.addi(Reg::A1, Reg::A1, 1);
    a.bne(Reg::A1, Reg::A2, "loop");
    a.halt();

    let mut cpu = Cpu::new(a.assemble().expect("assembles"));
    random_data(&mut cpu, layout::ARRAY_A, elems, seed, u64::MAX);
    cpu.set_reg(Reg::A0, layout::ARRAY_A);
    cpu.set_reg(Reg::A2, elems);
    cpu
}

/// Deeply predictable nested counting (exchange2's character): almost no
/// mispredictions, so pre-execution has nothing to do and partitioning
/// would only hurt.
pub fn exchange2_like(outer: u64) -> Cpu {
    let mut a = Asm::new(0x10000);
    a.label("outer");
    a.li(Reg::T0, 9);
    a.label("mid");
    a.li(Reg::T1, 9);
    a.label("inner");
    a.add(Reg::A3, Reg::A3, Reg::T0);
    a.xor(Reg::A4, Reg::A4, Reg::T1);
    a.addi(Reg::T1, Reg::T1, -1);
    a.bne(Reg::T1, Reg::ZERO, "inner");
    a.addi(Reg::T0, Reg::T0, -1);
    a.bne(Reg::T0, Reg::ZERO, "mid");
    a.addi(Reg::A1, Reg::A1, 1);
    a.bne(Reg::A1, Reg::A2, "outer");
    a.halt();

    let mut cpu = Cpu::new(a.assemble().expect("assembles"));
    cpu.set_reg(Reg::A2, outer);
    cpu
}

/// A delinquent inner loop that is visited for only ~`trip` iterations per
/// visit: helper-thread start/stop can never amortize (§V-J condition 2).
/// The short loop lives in a non-inlined routine (as in real codecs), so
/// the only contiguous loop enclosing its branch is the short loop itself.
pub fn xz_like(visits: u64, trip: u64, seed: u64) -> Cpu {
    let mut a = Asm::new(0x10000);
    // Driver: repeatedly call the short delinquent loop.
    a.label("visit");
    a.call("decode");
    a.add(Reg::A1, Reg::A1, Reg::A4);
    a.andi(Reg::A1, Reg::A1, 0xfff);
    a.addi(Reg::A2, Reg::A2, -1);
    a.bne(Reg::A2, Reg::ZERO, "visit");
    a.halt();
    // The short loop with a data-dependent branch.
    a.label("decode");
    a.li(Reg::T0, 0);
    a.label("short");
    a.add(Reg::T1, Reg::A1, Reg::T0);
    a.slli(Reg::T2, Reg::T1, 3);
    a.add(Reg::T2, Reg::A0, Reg::T2);
    a.ld(Reg::T3, Reg::T2, 0);
    a.andi(Reg::T3, Reg::T3, 1);
    a.beq(Reg::T3, Reg::ZERO, "skip"); // delinquent
    a.addi(Reg::A3, Reg::A3, 1);
    a.label("skip");
    a.addi(Reg::T0, Reg::T0, 1);
    a.bltu(Reg::T0, Reg::A4, "short"); // short trip count
    a.ret();

    let mut cpu = Cpu::new(a.assemble().expect("assembles"));
    random_data(&mut cpu, layout::ARRAY_A, 0x1000 + trip, seed, u64::MAX);
    cpu.set_reg(Reg::A0, layout::ARRAY_A);
    cpu.set_reg(Reg::A2, visits);
    cpu.set_reg(Reg::A4, trip);
    cpu
}

/// Hundreds of static mispredicting branches across many small loops:
/// the 256-entry DBT thrashes and branches never finish gathering
/// delinquency (the paper's gcc observation).
pub fn gcc_like(rounds: u64, loops: usize, seed: u64) -> Cpu {
    let mut a = Asm::new(0x10000);
    a.label("round");
    for l in 0..loops {
        let lp = format!("l{l}");
        let sk = format!("k{l}");
        let sk2 = format!("m{l}");
        a.li(Reg::T0, 4);
        a.label(&lp);
        a.slli(Reg::T1, Reg::A1, 3);
        a.add(Reg::T1, Reg::A0, Reg::T1);
        a.ld(Reg::T2, Reg::T1, 0);
        a.addi(Reg::A1, Reg::A1, 1);
        a.andi(Reg::A1, Reg::A1, 0x7ff);
        a.andi(Reg::T3, Reg::T2, 1);
        a.beq(Reg::T3, Reg::ZERO, &sk); // one cold delinquent branch...
        a.addi(Reg::A3, Reg::A3, 1);
        a.label(&sk);
        a.srli(Reg::T3, Reg::T2, 1);
        a.andi(Reg::T3, Reg::T3, 1);
        a.beq(Reg::T3, Reg::ZERO, &sk2); // ...and another, per loop
        a.addi(Reg::A4, Reg::A4, 1);
        a.label(&sk2);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bne(Reg::T0, Reg::ZERO, &lp);
    }
    a.addi(Reg::A2, Reg::A2, -1);
    a.bne(Reg::A2, Reg::ZERO, "round");
    a.halt();

    let mut cpu = Cpu::new(a.assemble().expect("assembles"));
    random_data(&mut cpu, layout::ARRAY_A, 0x800, seed, u64::MAX);
    cpu.set_reg(Reg::A0, layout::ARRAY_A);
    cpu.set_reg(Reg::A2, rounds);
    cpu
}

/// Streaming, memory-bound kernel with predictable control (x264's
/// character): a useful helper thread could be built, but branch
/// prediction isn't the bottleneck.
pub fn x264_like(blocks: u64) -> Cpu {
    let mut a = Asm::new(0x10000);
    a.label("loop");
    a.slli(Reg::T0, Reg::A1, 6); // 64-byte stride: every block misses
    a.add(Reg::T0, Reg::A0, Reg::T0);
    a.ld(Reg::T1, Reg::T0, 0);
    a.ld(Reg::T2, Reg::T0, 8);
    a.ld(Reg::T3, Reg::T0, 16);
    a.ld(Reg::T4, Reg::T0, 24);
    a.add(Reg::T1, Reg::T1, Reg::T2);
    a.add(Reg::T3, Reg::T3, Reg::T4);
    a.add(Reg::A3, Reg::T1, Reg::T3);
    a.add(Reg::A4, Reg::A4, Reg::A3);
    a.addi(Reg::A1, Reg::A1, 1);
    a.bne(Reg::A1, Reg::A2, "loop");
    a.halt();

    let mut cpu = Cpu::new(a.assemble().expect("assembles"));
    cpu.set_reg(Reg::A0, layout::ARRAY_A);
    cpu.set_reg(Reg::A2, blocks);
    cpu
}

/// Game-tree evaluation flavor (deepsjeng): a delinquent branch whose
/// inputs funnel through a large evaluation function — the whole body is
/// its backward slice, so the constructed helper thread violates the 75%
/// size bound (like [`omnetpp_like`], with a deeper, wider slice mix).
pub fn deepsjeng_like(elems: u64, seed: u64) -> Cpu {
    let mut a = Asm::new(0x10000);
    a.label("loop");
    a.slli(Reg::T0, Reg::A1, 3);
    a.add(Reg::T0, Reg::A0, Reg::T0);
    a.ld(Reg::T1, Reg::T0, 0); // position hash
    a.ld(Reg::T2, Reg::T0, 8); // material
                               // "Evaluation": two interleaved dependent chains merged at the end —
                               // all of it feeds the cutoff branch.
    for k in 0..12 {
        a.xor(Reg::T1, Reg::T1, Reg::T2);
        a.slli(Reg::T3, Reg::T1, 1);
        a.add(Reg::T1, Reg::T1, Reg::T3);
        a.srli(Reg::T4, Reg::T2, k % 11 + 1);
        a.add(Reg::T2, Reg::T2, Reg::T4);
        a.xor(Reg::T2, Reg::T2, Reg::T1);
    }
    a.add(Reg::T5, Reg::T1, Reg::T2);
    a.andi(Reg::T5, Reg::T5, 1);
    a.beq(Reg::T5, Reg::ZERO, "cutoff"); // delinquent; slice == body
    a.addi(Reg::A3, Reg::A3, 1);
    a.label("cutoff");
    a.addi(Reg::A1, Reg::A1, 1);
    a.bne(Reg::A1, Reg::A2, "loop");
    a.halt();

    let mut cpu = Cpu::new(a.assemble().expect("assembles"));
    random_data(&mut cpu, layout::ARRAY_A, 2 * elems + 2, seed, u64::MAX);
    cpu.set_reg(Reg::A0, layout::ARRAY_A);
    cpu.set_reg(Reg::A2, elems);
    cpu
}

/// Interpreter-dispatch flavor (perlbench): opcode dispatch through a
/// small, heavily-repeated program — histories repeat, so TAGE predicts
/// nearly everything (the paper reports only a 2% partitioning cost and
/// little for Phelps to do).
pub fn perlbench_like(iters: u64, seed: u64) -> Cpu {
    let mut a = Asm::new(0x10000);
    // A fixed 16-op "bytecode" program interpreted in a loop: dispatch
    // branches follow a repeating sequence.
    a.label("loop");
    a.andi(Reg::T0, Reg::A1, 15); // opcode index
    a.slli(Reg::T1, Reg::T0, 3);
    a.add(Reg::T1, Reg::A0, Reg::T1);
    a.ld(Reg::T2, Reg::T1, 0); // opcode (fixed program)
    a.andi(Reg::T3, Reg::T2, 3);
    a.beq(Reg::T3, Reg::ZERO, "op0");
    a.addi(Reg::T4, Reg::T3, -1);
    a.beq(Reg::T4, Reg::ZERO, "op1");
    a.addi(Reg::T4, Reg::T3, -2);
    a.beq(Reg::T4, Reg::ZERO, "op2");
    a.xor(Reg::A3, Reg::A3, Reg::T2); // op3
    a.j("next");
    a.label("op0");
    a.add(Reg::A3, Reg::A3, Reg::T2);
    a.j("next");
    a.label("op1");
    a.sub(Reg::A3, Reg::A3, Reg::T2);
    a.j("next");
    a.label("op2");
    a.or(Reg::A3, Reg::A3, Reg::T2);
    a.label("next");
    a.addi(Reg::A1, Reg::A1, 1);
    a.bne(Reg::A1, Reg::A2, "loop");
    a.halt();

    let mut cpu = Cpu::new(a.assemble().expect("assembles"));
    random_data(&mut cpu, layout::ARRAY_A, 16, seed, 4);
    cpu.set_reg(Reg::A0, layout::ARRAY_A);
    cpu.set_reg(Reg::A2, iters);
    cpu
}

/// Tree-walking flavor (xalancbmk): pointer chasing through a randomized
/// binary tree with direction decided per node. Mispredictions are spread
/// across short walks; the walk loop's trip count is small and the branch
/// outcomes follow the (repeating) tree shape, so little clears the bar.
pub fn xalanc_like(nodes: u64, walks: u64, seed: u64) -> Cpu {
    let mut a = Asm::new(0x10000);
    // Node layout: [left, right, key] — 24 bytes each at ARRAY_A.
    a.label("walk");
    a.li(Reg::T0, 0); // node index
    a.li(Reg::T5, 0); // depth
    a.label("descend");
    a.slli(Reg::T1, Reg::T0, 3);
    a.add(Reg::T2, Reg::T1, Reg::T1);
    a.add(Reg::T1, Reg::T2, Reg::T1); // t1 = 24 * node
    a.add(Reg::T1, Reg::A0, Reg::T1);
    a.ld(Reg::T3, Reg::T1, 16); // key
    a.xor(Reg::T4, Reg::T3, Reg::A1);
    a.andi(Reg::T4, Reg::T4, 1);
    a.beq(Reg::T4, Reg::ZERO, "left"); // data-dependent direction
    a.ld(Reg::T0, Reg::T1, 8); // right child
    a.j("step");
    a.label("left");
    a.ld(Reg::T0, Reg::T1, 0); // left child
    a.label("step");
    a.addi(Reg::T5, Reg::T5, 1);
    a.slti(Reg::T6, Reg::T5, 10);
    a.bne(Reg::T6, Reg::ZERO, "descend"); // walk depth 10
    a.add(Reg::A3, Reg::A3, Reg::T0);
    a.addi(Reg::A1, Reg::A1, 1);
    a.bne(Reg::A1, Reg::A2, "walk");
    a.halt();

    let mut cpu = Cpu::new(a.assemble().expect("assembles"));
    let mut rng = SmallRng::seed_from_u64(seed);
    for n in 0..nodes {
        let base = layout::ARRAY_A + 24 * n;
        cpu.mem.write_u64(base, rng.gen_range(0..nodes));
        cpu.mem.write_u64(base + 8, rng.gen_range(0..nodes));
        cpu.mem.write_u64(base + 16, rng.gen::<u64>());
    }
    cpu.set_reg(Reg::A0, layout::ARRAY_A);
    cpu.set_reg(Reg::A2, walks);
    cpu
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(mut cpu: Cpu) -> Cpu {
        cpu.run(200_000_000).unwrap();
        assert!(cpu.is_halted(), "kernel halts");
        cpu
    }

    #[test]
    fn all_kernels_run_to_completion() {
        run(mcf_like(5_000, 1));
        run(leela_like(2_000, 12, 2));
        run(omnetpp_like(2_000, 30, 3));
        run(exchange2_like(200));
        run(xz_like(3_000, 3, 4));
        run(gcc_like(50, 80, 5));
        run(x264_like(20_000));
        run(deepsjeng_like(2_000, 6));
        run(perlbench_like(20_000, 7));
        run(xalanc_like(512, 2_000, 8));
    }

    #[test]
    fn xalanc_walks_stay_in_bounds() {
        let cpu = run(xalanc_like(256, 500, 9));
        // Walk accumulator moved and the program halted without faulting:
        // every chased pointer stayed a valid node index.
        assert!(cpu.reg(Reg::A3) > 0);
    }

    #[test]
    fn perlbench_program_is_cyclic() {
        // A 16-op program interpreted 32k times: the dispatch sequence
        // repeats with period 16, which history predictors learn.
        let cpu = run(perlbench_like(32_768, 3));
        assert_eq!(cpu.reg(Reg::A1), 32_768);
    }

    #[test]
    fn exchange2_is_predictable_work() {
        let cpu = run(exchange2_like(100));
        // 100 outer × 9 mid × 9 inner iterations of real work.
        assert!(cpu.retired() > 100 * 81 * 2);
    }

    #[test]
    fn mcf_helper_is_called_per_element() {
        let cpu = run(mcf_like(1_000, 7));
        // acc accumulates 3 per odd element: roughly half.
        let acc = cpu.reg(Reg::A3);
        assert!(acc > 3 * 300 && acc < 3 * 700, "acc {acc}");
    }

    #[test]
    fn gcc_like_has_many_static_branches() {
        // 80 loops × 2 data branches + loop branches: > 256 static
        // conditional branches would be ideal; ensure at least a lot.
        let cpu = gcc_like(1, 80, 9);
        let listing = cpu.program().to_string();
        let branches = listing
            .lines()
            .filter(|l| l.contains("beq") || l.contains("bne") || l.contains("blt"))
            .count();
        assert!(branches > 160, "static branches: {branches}");
    }

    #[test]
    fn xz_like_visits_are_short() {
        let cpu = run(xz_like(500, 3, 1));
        // 500 visits × 3 iterations each.
        assert!(cpu.retired() > 500 * 3 * 5);
    }
}
