//! GAP-style graph kernels in guest assembly.
//!
//! Each kernel follows the microarchitectural idiom the paper relies on:
//!
//! * [`bfs`] and [`bc`] use the **nested-loop idiom** of Fig. 2 — a
//!   long-running outer loop over the frontier with a short,
//!   unpredictable-trip-count inner loop over neighbors, an inner header
//!   branch, unpredictable body branches, and **guarded stores that
//!   influence later branch instances** (`parent[v]` / `depth[v]`);
//! * [`pr`] has the nested idiom with a delinquent inner loop branch only;
//! * [`cc`] (label propagation) adds an unpredictable compare branch with
//!   a guarded, influential store;
//! * [`cc_sv`] (Shiloach–Vishkin-style) runs **two** delinquent flat loops
//!   (hook and pointer-jumping) in the same epochs — the paper's Fig. 14
//!   `cc_sv` scenario;
//! * [`sssp`] (Bellman–Ford over an edge list) has the full b1→b2→s1
//!   nesting in a flat loop: a reachability test guarding a relaxation
//!   test guarding the `dist[v]` store that feeds both.

use crate::graph::{layout, write_csr, Graph};
use phelps_isa::{Asm, Cpu, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `u64::MAX` materialized with `li` (sign-extended -1).
const INF: i64 = -1;

fn prepared_cpu(a: Asm, g: &Graph) -> Cpu {
    let mut cpu = Cpu::new(a.assemble().expect("kernel assembles"));
    write_csr(&mut cpu.mem, g);
    cpu
}

/// Breadth-first search from `source`, level-synchronous with explicit
/// frontier arrays. Returns the prepared CPU.
///
/// Register map: `s0`=offs, `s1`=neigh, `s2`=parent, `s3`=frontier,
/// `s4`=next, `s5`=frontier size, `s6`=next tail, `s7`=fi, `a7`=-1.
pub fn bfs(g: &Graph, source: usize) -> Cpu {
    let mut a = Asm::new(0x10000);

    a.label("outer");
    // u = frontier[fi]
    a.slli(Reg::T6, Reg::S7, 3);
    a.add(Reg::T6, Reg::S3, Reg::T6);
    a.ld(Reg::T0, Reg::T6, 0);
    // start/end = offs[u], offs[u+1]
    a.slli(Reg::T6, Reg::T0, 3);
    a.add(Reg::T6, Reg::S0, Reg::T6);
    a.ld(Reg::T2, Reg::T6, 0);
    a.ld(Reg::T3, Reg::T6, 8);
    a.bgeu(Reg::T2, Reg::T3, "skip_inner"); // brA: header
    a.label("inner");
    // v = neigh[j]
    a.slli(Reg::T6, Reg::T2, 3);
    a.add(Reg::T6, Reg::S1, Reg::T6);
    a.ld(Reg::T4, Reg::T6, 0);
    // parent check
    a.slli(Reg::T5, Reg::T4, 3);
    a.add(Reg::T5, Reg::S2, Reg::T5);
    a.ld(Reg::A2, Reg::T5, 0);
    a.bne(Reg::A2, Reg::A7, "cont"); // brB: visited?
    a.sd(Reg::T0, Reg::T5, 0); // parent[v] = u (guarded, influential)
    a.slli(Reg::A3, Reg::S6, 3);
    a.add(Reg::A3, Reg::S4, Reg::A3);
    a.sd(Reg::T4, Reg::A3, 0); // next[tail] = v
    a.addi(Reg::S6, Reg::S6, 1);
    a.label("cont");
    a.addi(Reg::T2, Reg::T2, 1);
    a.bltu(Reg::T2, Reg::T3, "inner"); // brC: inner backward
    a.label("skip_inner");
    // Per-vertex bookkeeping outside every branch slice (real compiled
    // kernels carry stats, prefetch hints, and spilled temporaries here).
    a.add(Reg::S8, Reg::S8, Reg::T0);
    a.xor(Reg::S9, Reg::S9, Reg::S8);
    a.slli(Reg::S10, Reg::S8, 1);
    a.add(Reg::S11, Reg::S11, Reg::S10);
    a.andi(Reg::S10, Reg::S9, 4095);
    a.or(Reg::S11, Reg::S11, Reg::S10);
    a.add(Reg::S9, Reg::S9, Reg::S11);
    a.xor(Reg::S8, Reg::S8, Reg::S10);
    a.slli(Reg::S10, Reg::S11, 2);
    a.add(Reg::S8, Reg::S8, Reg::S10);
    a.addi(Reg::S7, Reg::S7, 1);
    a.bltu(Reg::S7, Reg::S5, "outer"); // brD: outer backward
                                       // Level boundary: swap frontier/next.
    a.beq(Reg::S6, Reg::ZERO, "done");
    a.mv(Reg::A4, Reg::S3);
    a.mv(Reg::S3, Reg::S4);
    a.mv(Reg::S4, Reg::A4);
    a.mv(Reg::S5, Reg::S6);
    a.li(Reg::S6, 0);
    a.li(Reg::S7, 0);
    a.j("outer");
    a.label("done");
    a.halt();

    let mut cpu = prepared_cpu(a, g);
    let n = g.num_vertices() as u64;
    for v in 0..n {
        cpu.mem.write_u64(layout::ARRAY_A + 8 * v, u64::MAX);
    }
    cpu.mem
        .write_u64(layout::ARRAY_A + 8 * source as u64, source as u64);
    cpu.mem.write_u64(layout::ARRAY_B, source as u64);
    cpu.set_reg(Reg::S0, layout::OFFSETS);
    cpu.set_reg(Reg::S1, layout::NEIGHBORS);
    cpu.set_reg(Reg::S2, layout::ARRAY_A);
    cpu.set_reg(Reg::S3, layout::ARRAY_B);
    cpu.set_reg(Reg::S4, layout::ARRAY_C);
    cpu.set_reg(Reg::S5, 1);
    cpu.set_reg(Reg::S6, 0);
    cpu.set_reg(Reg::S7, 0);
    cpu.set_reg(Reg::A7, u64::MAX);
    cpu
}

/// PageRank, pull style with Q32 fixed-point arithmetic, `iters` sweeps.
///
/// Register map: `s0`=offs, `s1`=neigh, `s2`=contrib, `s3`=rank,
/// `s4`=u, `s5`=n, `s6`=iteration counter, `a6`=base rank, `a5`=alpha num.
pub fn pr(g: &Graph, iters: u64) -> Cpu {
    let mut a = Asm::new(0x10000);

    a.label("sweep");
    a.li(Reg::S4, 0);
    a.label("outer");
    a.slli(Reg::T6, Reg::S4, 3);
    a.add(Reg::T6, Reg::S0, Reg::T6);
    a.ld(Reg::T2, Reg::T6, 0); // start
    a.ld(Reg::T3, Reg::T6, 8); // end
    a.li(Reg::T0, 0); // sum
    a.bgeu(Reg::T2, Reg::T3, "skip_inner"); // header
    a.label("inner");
    a.slli(Reg::T6, Reg::T2, 3);
    a.add(Reg::T6, Reg::S1, Reg::T6);
    a.ld(Reg::T4, Reg::T6, 0); // v
    a.slli(Reg::T5, Reg::T4, 3);
    a.add(Reg::T5, Reg::S2, Reg::T5);
    a.ld(Reg::A2, Reg::T5, 0); // contrib[v]
    a.add(Reg::T0, Reg::T0, Reg::A2);
    a.addi(Reg::T2, Reg::T2, 1);
    a.bltu(Reg::T2, Reg::T3, "inner"); // brC delinquent (trip count)
    a.label("skip_inner");
    // rank[u] = base + (alpha * sum) >> 8   (alpha = 217/256 ≈ 0.85)
    a.mul(Reg::T0, Reg::T0, Reg::A5);
    a.srli(Reg::T0, Reg::T0, 8);
    a.add(Reg::T0, Reg::T0, Reg::A6);
    a.slli(Reg::T6, Reg::S4, 3);
    a.add(Reg::T6, Reg::S3, Reg::T6);
    a.sd(Reg::T0, Reg::T6, 0);
    a.addi(Reg::S4, Reg::S4, 1);
    a.bltu(Reg::S4, Reg::S5, "outer");
    // Contribution update pass: contrib[v] = rank[v] / degree[v].
    a.li(Reg::S4, 0);
    a.label("contrib");
    a.slli(Reg::T6, Reg::S4, 3);
    a.add(Reg::T5, Reg::S0, Reg::T6);
    a.ld(Reg::T2, Reg::T5, 0);
    a.ld(Reg::T3, Reg::T5, 8);
    a.sub(Reg::T3, Reg::T3, Reg::T2); // degree
    a.add(Reg::T5, Reg::S3, Reg::T6);
    a.ld(Reg::T0, Reg::T5, 0); // rank[v]
    a.alu(phelps_isa::AluOp::Divu, Reg::T0, Reg::T0, Reg::T3);
    a.add(Reg::T5, Reg::S2, Reg::T6);
    a.sd(Reg::T0, Reg::T5, 0);
    a.addi(Reg::S4, Reg::S4, 1);
    a.bltu(Reg::S4, Reg::S5, "contrib");
    a.addi(Reg::S6, Reg::S6, -1);
    a.bne(Reg::S6, Reg::ZERO, "sweep");
    a.halt();

    let mut cpu = prepared_cpu(a, g);
    let n = g.num_vertices() as u64;
    let init_rank = 1u64 << 20;
    for v in 0..n {
        cpu.mem.write_u64(layout::ARRAY_B + 8 * v, init_rank);
        let deg = g.neighbors_of(v as usize).len() as u64;
        cpu.mem
            .write_u64(layout::ARRAY_A + 8 * v, init_rank / deg.max(1));
    }
    cpu.set_reg(Reg::S0, layout::OFFSETS);
    cpu.set_reg(Reg::S1, layout::NEIGHBORS);
    cpu.set_reg(Reg::S2, layout::ARRAY_A); // contrib
    cpu.set_reg(Reg::S3, layout::ARRAY_B); // rank
    cpu.set_reg(Reg::S5, n);
    cpu.set_reg(Reg::S6, iters);
    cpu.set_reg(Reg::A5, 217);
    cpu.set_reg(Reg::A6, (1u64 << 20) * 39 / 256); // (1-alpha) * init
    cpu
}

/// Connected components via label propagation, `max_sweeps` bounded.
///
/// Register map: `s0`=offs, `s1`=neigh, `s2`=comp, `s4`=u, `s5`=n,
/// `s6`=changed, `s7`=sweeps left.
pub fn cc(g: &Graph, max_sweeps: u64) -> Cpu {
    let mut a = Asm::new(0x10000);

    a.label("sweep");
    a.li(Reg::S4, 0);
    a.li(Reg::S6, 0);
    a.label("outer");
    a.slli(Reg::T6, Reg::S4, 3);
    a.add(Reg::T6, Reg::S0, Reg::T6);
    a.ld(Reg::T2, Reg::T6, 0);
    a.ld(Reg::T3, Reg::T6, 8);
    // cu = comp[u]
    a.slli(Reg::A2, Reg::S4, 3);
    a.add(Reg::A2, Reg::S2, Reg::A2);
    a.ld(Reg::T0, Reg::A2, 0);
    a.bgeu(Reg::T2, Reg::T3, "skip_inner"); // header
    a.label("inner");
    a.slli(Reg::T6, Reg::T2, 3);
    a.add(Reg::T6, Reg::S1, Reg::T6);
    a.ld(Reg::T4, Reg::T6, 0); // v
    a.slli(Reg::T5, Reg::T4, 3);
    a.add(Reg::T5, Reg::S2, Reg::T5);
    a.ld(Reg::A3, Reg::T5, 0); // cv = comp[v]
    a.bgeu(Reg::A3, Reg::T0, "cont"); // b1: cv < cu? (unpredictable)
    a.mv(Reg::T0, Reg::A3); // cu = cv
    a.sd(Reg::T0, Reg::A2, 0); // comp[u] = cv (guarded, influential)
    a.addi(Reg::S6, Reg::S6, 1);
    a.label("cont");
    a.addi(Reg::T2, Reg::T2, 1);
    a.bltu(Reg::T2, Reg::T3, "inner"); // brC
    a.label("skip_inner");
    // Per-vertex bookkeeping outside every branch slice (real compiled
    // kernels carry stats, prefetch hints, and spilled temporaries here).
    a.add(Reg::S8, Reg::S8, Reg::T0);
    a.xor(Reg::S9, Reg::S9, Reg::S8);
    a.slli(Reg::S10, Reg::S8, 1);
    a.add(Reg::S11, Reg::S11, Reg::S10);
    a.andi(Reg::S10, Reg::S9, 4095);
    a.or(Reg::S11, Reg::S11, Reg::S10);
    a.add(Reg::S9, Reg::S9, Reg::S11);
    a.xor(Reg::S8, Reg::S8, Reg::S10);
    a.slli(Reg::S10, Reg::S11, 2);
    a.add(Reg::S8, Reg::S8, Reg::S10);
    a.addi(Reg::S4, Reg::S4, 1);
    a.bltu(Reg::S4, Reg::S5, "outer"); // brD
    a.addi(Reg::S7, Reg::S7, -1);
    a.beq(Reg::S7, Reg::ZERO, "done");
    a.bne(Reg::S6, Reg::ZERO, "sweep");
    a.label("done");
    a.halt();

    let mut cpu = prepared_cpu(a, g);
    let n = g.num_vertices() as u64;
    for v in 0..n {
        cpu.mem.write_u64(layout::ARRAY_A + 8 * v, v);
    }
    cpu.set_reg(Reg::S0, layout::OFFSETS);
    cpu.set_reg(Reg::S1, layout::NEIGHBORS);
    cpu.set_reg(Reg::S2, layout::ARRAY_A);
    cpu.set_reg(Reg::S5, n);
    cpu.set_reg(Reg::S7, max_sweeps);
    cpu
}

/// Shiloach–Vishkin-style connected components over an explicit edge list:
/// a *hook* loop and a *pointer-jumping* loop — two delinquent loops live
/// in the same epoch (the paper's `cc_sv` Fig. 14 scenario).
///
/// Register map: `s0`=edge array (u,v pairs), `s2`=comp, `s4`=index,
/// `s5`=edge count ×2, `s6`=changed, `s7`=sweeps left, `s3`=n.
pub fn cc_sv(g: &Graph, max_sweeps: u64) -> Cpu {
    let mut a = Asm::new(0x10000);

    a.label("sweep");
    a.li(Reg::S4, 0);
    a.li(Reg::S6, 0);
    // Hook: for each directed edge (u, v).
    a.label("hook");
    a.slli(Reg::T6, Reg::S4, 4); // 16 bytes per edge
    a.add(Reg::T6, Reg::S0, Reg::T6);
    a.ld(Reg::T0, Reg::T6, 0); // u
    a.ld(Reg::T1, Reg::T6, 8); // v
    a.slli(Reg::T2, Reg::T0, 3);
    a.add(Reg::T2, Reg::S2, Reg::T2);
    a.ld(Reg::T3, Reg::T2, 0); // cu = comp[u]
    a.slli(Reg::T4, Reg::T1, 3);
    a.add(Reg::T4, Reg::S2, Reg::T4);
    a.ld(Reg::T5, Reg::T4, 0); // cv = comp[v]
    a.bgeu(Reg::T5, Reg::T3, "nohook"); // b1: cv < cu (delinquent)
                                        // comp[cu] = cv (hook the root; guarded, influential store)
    a.slli(Reg::A2, Reg::T3, 3);
    a.add(Reg::A2, Reg::S2, Reg::A2);
    a.sd(Reg::T5, Reg::A2, 0);
    a.addi(Reg::S6, Reg::S6, 1);
    a.label("nohook");
    // Per-vertex bookkeeping outside every branch slice (real compiled
    // kernels carry stats, prefetch hints, and spilled temporaries here).
    a.add(Reg::S8, Reg::S8, Reg::T0);
    a.xor(Reg::S9, Reg::S9, Reg::S8);
    a.slli(Reg::S10, Reg::S8, 1);
    a.add(Reg::S11, Reg::S11, Reg::S10);
    a.andi(Reg::S10, Reg::S9, 4095);
    a.or(Reg::S11, Reg::S11, Reg::S10);
    a.add(Reg::S9, Reg::S9, Reg::S11);
    a.xor(Reg::S8, Reg::S8, Reg::S10);
    a.slli(Reg::S10, Reg::S11, 2);
    a.add(Reg::S8, Reg::S8, Reg::S10);
    a.addi(Reg::S4, Reg::S4, 1);
    a.bltu(Reg::S4, Reg::S5, "hook"); // loop branch (hook loop)
                                      // Pointer jumping: comp[i] = comp[comp[i]] until stable this sweep.
    a.li(Reg::S4, 0);
    a.label("jump");
    a.slli(Reg::T6, Reg::S4, 3);
    a.add(Reg::T6, Reg::S2, Reg::T6);
    a.ld(Reg::T0, Reg::T6, 0); // c = comp[i]
    a.slli(Reg::T1, Reg::T0, 3);
    a.add(Reg::T1, Reg::S2, Reg::T1);
    a.ld(Reg::T2, Reg::T1, 0); // cc = comp[c]
    a.beq(Reg::T2, Reg::T0, "nojump"); // b2: already a root? (delinquent)
    a.sd(Reg::T2, Reg::T6, 0); // comp[i] = cc (guarded, influential)
    a.addi(Reg::S6, Reg::S6, 1);
    a.label("nojump");
    // Per-vertex bookkeeping outside every branch slice (real compiled
    // kernels carry stats, prefetch hints, and spilled temporaries here).
    a.add(Reg::S8, Reg::S8, Reg::T0);
    a.xor(Reg::S9, Reg::S9, Reg::S8);
    a.slli(Reg::S10, Reg::S8, 1);
    a.add(Reg::S11, Reg::S11, Reg::S10);
    a.andi(Reg::S10, Reg::S9, 4095);
    a.or(Reg::S11, Reg::S11, Reg::S10);
    a.add(Reg::S9, Reg::S9, Reg::S11);
    a.xor(Reg::S8, Reg::S8, Reg::S10);
    a.slli(Reg::S10, Reg::S11, 2);
    a.add(Reg::S8, Reg::S8, Reg::S10);
    a.addi(Reg::S4, Reg::S4, 1);
    a.bltu(Reg::S4, Reg::S3, "jump"); // loop branch (jump loop)
    a.addi(Reg::S7, Reg::S7, -1);
    a.beq(Reg::S7, Reg::ZERO, "done");
    a.bne(Reg::S6, Reg::ZERO, "sweep");
    a.label("done");
    a.halt();

    let mut cpu = prepared_cpu(a, g);
    let n = g.num_vertices() as u64;
    for v in 0..n {
        cpu.mem.write_u64(layout::ARRAY_A + 8 * v, v);
    }
    // Edge list at ARRAY_D: every directed edge as (u, v), 16 B each.
    let mut idx = 0u64;
    for u in 0..g.num_vertices() {
        for &v in g.neighbors_of(u) {
            cpu.mem.write_u64(layout::ARRAY_D + 16 * idx, u as u64);
            cpu.mem.write_u64(layout::ARRAY_D + 16 * idx + 8, v);
            idx += 1;
        }
    }
    cpu.set_reg(Reg::S0, layout::ARRAY_D);
    cpu.set_reg(Reg::S2, layout::ARRAY_A);
    cpu.set_reg(Reg::S3, n);
    cpu.set_reg(Reg::S5, idx);
    cpu.set_reg(Reg::S7, max_sweeps);
    cpu
}

/// Single-source shortest paths: Bellman–Ford sweeps over the edge list
/// with per-edge weights. The relaxation has the full b1→b2→s1 structure:
/// reachability (b1) guards the improvement test (b2) which guards the
/// `dist[v]` store that influences future instances of both.
///
/// Register map: `s0`=edges (u,v,w triples), `s2`=dist, `s4`=index,
/// `s5`=edge count, `s6`=changed, `s7`=rounds left, `a7`=INF.
pub fn sssp(g: &Graph, source: usize, rounds: u64, seed: u64) -> Cpu {
    let mut a = Asm::new(0x10000);

    a.label("round");
    a.li(Reg::S4, 0);
    a.li(Reg::S6, 0);
    a.label("edge");
    // u, v, w (24 bytes per edge: index*24)
    a.slli(Reg::T6, Reg::S4, 3);
    a.add(Reg::A2, Reg::T6, Reg::T6);
    a.add(Reg::T6, Reg::A2, Reg::T6); // t6 = 24 * s4
    a.add(Reg::T6, Reg::S0, Reg::T6);
    a.ld(Reg::T0, Reg::T6, 0); // u
    a.ld(Reg::T1, Reg::T6, 8); // v
    a.ld(Reg::T2, Reg::T6, 16); // w
    a.slli(Reg::T3, Reg::T0, 3);
    a.add(Reg::T3, Reg::S2, Reg::T3);
    a.ld(Reg::T4, Reg::T3, 0); // du = dist[u]
    a.beq(Reg::T4, Reg::A7, "skip"); // b1: unreachable? (delinquent)
    a.add(Reg::T4, Reg::T4, Reg::T2); // nd = du + w
    a.slli(Reg::T5, Reg::T1, 3);
    a.add(Reg::T5, Reg::S2, Reg::T5);
    a.ld(Reg::A3, Reg::T5, 0); // dv = dist[v]
    a.bgeu(Reg::T4, Reg::A3, "skip"); // b2: no improvement (delinquent, guarded)
    a.sd(Reg::T4, Reg::T5, 0); // s1: dist[v] = nd (guarded by b1 & b2)
    a.addi(Reg::S6, Reg::S6, 1);
    a.label("skip");
    // Per-vertex bookkeeping outside every branch slice (real compiled
    // kernels carry stats, prefetch hints, and spilled temporaries here).
    a.add(Reg::S8, Reg::S8, Reg::T0);
    a.xor(Reg::S9, Reg::S9, Reg::S8);
    a.slli(Reg::S10, Reg::S8, 1);
    a.add(Reg::S11, Reg::S11, Reg::S10);
    a.andi(Reg::S10, Reg::S9, 4095);
    a.or(Reg::S11, Reg::S11, Reg::S10);
    a.add(Reg::S9, Reg::S9, Reg::S11);
    a.xor(Reg::S8, Reg::S8, Reg::S10);
    a.slli(Reg::S10, Reg::S11, 2);
    a.add(Reg::S8, Reg::S8, Reg::S10);
    a.addi(Reg::S4, Reg::S4, 1);
    a.bltu(Reg::S4, Reg::S5, "edge"); // loop branch
    a.addi(Reg::S7, Reg::S7, -1);
    a.beq(Reg::S7, Reg::ZERO, "done");
    a.bne(Reg::S6, Reg::ZERO, "round");
    a.label("done");
    a.halt();

    let mut cpu = prepared_cpu(a, g);
    let n = g.num_vertices() as u64;
    let mut rng = SmallRng::seed_from_u64(seed);
    for v in 0..n {
        cpu.mem.write_u64(layout::ARRAY_A + 8 * v, u64::MAX);
    }
    cpu.mem.write_u64(layout::ARRAY_A + 8 * source as u64, 0);
    let mut idx = 0u64;
    for u in 0..g.num_vertices() {
        for &v in g.neighbors_of(u) {
            let w = rng.gen_range(1..64u64);
            cpu.mem.write_u64(layout::ARRAY_D + 24 * idx, u as u64);
            cpu.mem.write_u64(layout::ARRAY_D + 24 * idx + 8, v);
            cpu.mem.write_u64(layout::ARRAY_D + 24 * idx + 16, w);
            idx += 1;
        }
    }
    cpu.set_reg(Reg::S0, layout::ARRAY_D);
    cpu.set_reg(Reg::S2, layout::ARRAY_A);
    cpu.set_reg(Reg::S4, 0);
    cpu.set_reg(Reg::S5, idx);
    cpu.set_reg(Reg::S7, rounds);
    cpu.set_reg(Reg::A7, INF as u64);
    cpu
}

/// Betweenness-centrality forward phase: a level-synchronous BFS that also
/// accumulates path counts (`sigma`), with two dependent data-driven
/// branches per neighbor and guarded stores that feed later loads.
///
/// Register map: as [`bfs`], plus `a5`=sigma base, `a6`=depth base,
/// `a4`=current depth.
pub fn bc(g: &Graph, source: usize) -> Cpu {
    let mut a = Asm::new(0x10000);

    a.label("outer");
    a.slli(Reg::T6, Reg::S7, 3);
    a.add(Reg::T6, Reg::S3, Reg::T6);
    a.ld(Reg::T0, Reg::T6, 0); // u
    a.slli(Reg::T6, Reg::T0, 3);
    a.add(Reg::T6, Reg::S0, Reg::T6);
    a.ld(Reg::T2, Reg::T6, 0); // start
    a.ld(Reg::T3, Reg::T6, 8); // end
                               // sigma_u
    a.slli(Reg::A2, Reg::T0, 3);
    a.add(Reg::A2, Reg::A5, Reg::A2);
    a.ld(Reg::A2, Reg::A2, 0);
    a.bgeu(Reg::T2, Reg::T3, "skip_inner"); // header
    a.label("inner");
    a.slli(Reg::T6, Reg::T2, 3);
    a.add(Reg::T6, Reg::S1, Reg::T6);
    a.ld(Reg::T4, Reg::T6, 0); // v
    a.slli(Reg::T5, Reg::T4, 3); // t5 = 8v (kept live for both paths)
    a.add(Reg::A3, Reg::A6, Reg::T5); // &depth[v]
    a.ld(Reg::A0, Reg::A3, 0); // depth[v] — not clobbered by either path
    a.add(Reg::A1, Reg::A5, Reg::T5); // &sigma[v], shared by both paths
    a.bne(Reg::A0, Reg::A7, "not_new"); // b1: depth[v] set? (delinquent)
                                        // First discovery: depth[v]=d+1, sigma[v]+=sigma_u, enqueue.
                                        // Path-local temps (t1/t6) are always written before read on this
                                        // path, so the straight-lined helper thread computes correct values
                                        // (no alternate-producer hazard; paper §V-K).
    a.addi(Reg::T1, Reg::A4, 1);
    a.sd(Reg::T1, Reg::A3, 0); // depth store (guarded, influential)
    a.ld(Reg::T1, Reg::A1, 0);
    a.add(Reg::T1, Reg::T1, Reg::A2);
    a.sd(Reg::T1, Reg::A1, 0); // sigma store (guarded, influential)
    a.slli(Reg::T6, Reg::S6, 3);
    a.add(Reg::T6, Reg::S4, Reg::T6);
    a.sd(Reg::T4, Reg::T6, 0);
    a.addi(Reg::S6, Reg::S6, 1);
    a.j("cont");
    a.label("not_new");
    a.addi(Reg::T6, Reg::A4, 1);
    a.bne(Reg::A0, Reg::T6, "cont"); // b2: same level? (delinquent, guarded)
    a.ld(Reg::T1, Reg::A1, 0);
    a.add(Reg::T1, Reg::T1, Reg::A2);
    a.sd(Reg::T1, Reg::A1, 0); // sigma merge (guarded, influential)
    a.label("cont");
    a.addi(Reg::T2, Reg::T2, 1);
    a.bltu(Reg::T2, Reg::T3, "inner"); // brC
    a.label("skip_inner");
    // Per-vertex bookkeeping outside every branch slice (real compiled
    // kernels carry stats, prefetch hints, and spilled temporaries here).
    a.add(Reg::S8, Reg::S8, Reg::T0);
    a.xor(Reg::S9, Reg::S9, Reg::S8);
    a.slli(Reg::S10, Reg::S8, 1);
    a.add(Reg::S11, Reg::S11, Reg::S10);
    a.andi(Reg::S10, Reg::S9, 4095);
    a.or(Reg::S11, Reg::S11, Reg::S10);
    a.add(Reg::S9, Reg::S9, Reg::S11);
    a.xor(Reg::S8, Reg::S8, Reg::S10);
    a.slli(Reg::S10, Reg::S11, 2);
    a.add(Reg::S8, Reg::S8, Reg::S10);
    a.addi(Reg::S7, Reg::S7, 1);
    a.bltu(Reg::S7, Reg::S5, "outer"); // brD
    a.beq(Reg::S6, Reg::ZERO, "done");
    a.mv(Reg::A1, Reg::S3);
    a.mv(Reg::S3, Reg::S4);
    a.mv(Reg::S4, Reg::A1);
    a.mv(Reg::S5, Reg::S6);
    a.li(Reg::S6, 0);
    a.li(Reg::S7, 0);
    a.addi(Reg::A4, Reg::A4, 1);
    a.j("outer");
    a.label("done");
    a.halt();

    let mut cpu = prepared_cpu(a, g);
    let n = g.num_vertices() as u64;
    for v in 0..n {
        cpu.mem.write_u64(layout::ARRAY_A + 8 * v, u64::MAX); // depth
        cpu.mem.write_u64(layout::ARRAY_D + 8 * v, 0); // sigma
    }
    cpu.mem.write_u64(layout::ARRAY_A + 8 * source as u64, 0);
    cpu.mem.write_u64(layout::ARRAY_D + 8 * source as u64, 1);
    cpu.mem.write_u64(layout::ARRAY_B, source as u64);
    cpu.set_reg(Reg::S0, layout::OFFSETS);
    cpu.set_reg(Reg::S1, layout::NEIGHBORS);
    cpu.set_reg(Reg::S3, layout::ARRAY_B);
    cpu.set_reg(Reg::S4, layout::ARRAY_C);
    cpu.set_reg(Reg::S5, 1);
    cpu.set_reg(Reg::S6, 0);
    cpu.set_reg(Reg::S7, 0);
    cpu.set_reg(Reg::A4, 0);
    cpu.set_reg(Reg::A5, layout::ARRAY_D);
    cpu.set_reg(Reg::A6, layout::ARRAY_A);
    cpu.set_reg(Reg::A7, u64::MAX);
    cpu
}

/// Triangle counting over sorted adjacency lists: for each edge (u, v)
/// with v < u, intersect the neighbor lists of `u` and `v` with a merge
/// scan. The merge's comparison branches are data-dependent per element
/// (the GAP `tc` kernel's character); the inner intersection loop has a
/// short, unpredictable trip count.
///
/// Register map: `s0`=offs, `s1`=neigh, `s4`=u, `s5`=n, `s6`=triangles,
/// `t*`/`a*`=scratch.
pub fn tc(g: &Graph) -> Cpu {
    let mut a = Asm::new(0x10000);

    a.label("outer");
    a.slli(Reg::T6, Reg::S4, 3);
    a.add(Reg::T6, Reg::S0, Reg::T6);
    a.ld(Reg::T2, Reg::T6, 0); // u_start
    a.ld(Reg::T3, Reg::T6, 8); // u_end
    a.mv(Reg::A2, Reg::T2); // j over u's neighbors
    a.bgeu(Reg::A2, Reg::T3, "skip_u"); // header
    a.label("edges");
    a.slli(Reg::T6, Reg::A2, 3);
    a.add(Reg::T6, Reg::S1, Reg::T6);
    a.ld(Reg::T4, Reg::T6, 0); // v = neigh[j]
    a.bgeu(Reg::T4, Reg::S4, "next_edge"); // count each edge once (v < u)
                                           // Merge-intersect neigh[u] x neigh[v].
    a.slli(Reg::T6, Reg::T4, 3);
    a.add(Reg::T6, Reg::S0, Reg::T6);
    a.ld(Reg::A3, Reg::T6, 0); // v_start (p)
    a.ld(Reg::A4, Reg::T6, 8); // v_end
    a.mv(Reg::A5, Reg::T2); // q over u's list
    a.label("merge");
    a.bgeu(Reg::A3, Reg::A4, "next_edge");
    a.bgeu(Reg::A5, Reg::T3, "next_edge");
    a.slli(Reg::T6, Reg::A3, 3);
    a.add(Reg::T6, Reg::S1, Reg::T6);
    a.ld(Reg::A6, Reg::T6, 0); // x = neigh[p]
    a.slli(Reg::T6, Reg::A5, 3);
    a.add(Reg::T6, Reg::S1, Reg::T6);
    a.ld(Reg::A7, Reg::T6, 0); // y = neigh[q]
    a.bltu(Reg::A6, Reg::A7, "adv_p"); // data-dependent compare
    a.bltu(Reg::A7, Reg::A6, "adv_q"); // data-dependent compare
    a.addi(Reg::S6, Reg::S6, 1); // common neighbor: triangle
    a.addi(Reg::A3, Reg::A3, 1);
    a.addi(Reg::A5, Reg::A5, 1);
    a.j("merge");
    a.label("adv_p");
    a.addi(Reg::A3, Reg::A3, 1);
    a.j("merge");
    a.label("adv_q");
    a.addi(Reg::A5, Reg::A5, 1);
    a.j("merge");
    a.label("next_edge");
    a.addi(Reg::A2, Reg::A2, 1);
    a.bltu(Reg::A2, Reg::T3, "edges");
    a.label("skip_u");
    // Per-vertex bookkeeping outside the branch slices.
    a.add(Reg::S8, Reg::S8, Reg::S4);
    a.xor(Reg::S9, Reg::S9, Reg::S8);
    a.slli(Reg::S10, Reg::S8, 1);
    a.add(Reg::S11, Reg::S11, Reg::S10);
    a.addi(Reg::S4, Reg::S4, 1);
    a.bltu(Reg::S4, Reg::S5, "outer");
    a.halt();

    let mut cpu = prepared_cpu_sorted(a, g);
    cpu.set_reg(Reg::S0, layout::OFFSETS);
    cpu.set_reg(Reg::S1, layout::NEIGHBORS);
    cpu.set_reg(Reg::S5, g.num_vertices() as u64);
    cpu
}

/// Like [`prepared_cpu`], but writes each vertex's neighbor list sorted
/// (triangle counting's merge-intersection requires sorted lists).
fn prepared_cpu_sorted(a: Asm, g: &Graph) -> Cpu {
    let mut cpu = Cpu::new(a.assemble().expect("kernel assembles"));
    for (i, off) in g.offsets.iter().enumerate() {
        cpu.mem.write_u64(layout::OFFSETS + 8 * i as u64, *off);
    }
    let mut idx = 0u64;
    for v in 0..g.num_vertices() {
        let mut ns: Vec<u64> = g.neighbors_of(v).to_vec();
        ns.sort_unstable();
        for n in ns {
            cpu.mem.write_u64(layout::NEIGHBORS + 8 * idx, n);
            idx += 1;
        }
    }
    cpu
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    fn small_graph() -> Graph {
        Graph::generate(GraphKind::RoadNetwork, 2_000, 5)
    }

    /// Host-side reference BFS for validation.
    fn host_bfs(g: &Graph, source: usize) -> Vec<u64> {
        let n = g.num_vertices();
        let mut parent = vec![u64::MAX; n];
        parent[source] = source as u64;
        let mut frontier = vec![source];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in g.neighbors_of(u) {
                    if parent[v as usize] == u64::MAX {
                        parent[v as usize] = u as u64;
                        next.push(v as usize);
                    }
                }
            }
            frontier = next;
        }
        parent
    }

    #[test]
    fn bfs_matches_host_reference() {
        let g = small_graph();
        let mut cpu = bfs(&g, 0);
        cpu.run(100_000_000).unwrap();
        assert!(cpu.is_halted());
        let reference = host_bfs(&g, 0);
        for (v, &p) in reference.iter().enumerate() {
            let guest = cpu.mem.read_u64(layout::ARRAY_A + 8 * v as u64);
            // Parents may differ (visit order), but reachability must match.
            assert_eq!(guest == u64::MAX, p == u64::MAX, "vertex {v} reachability");
        }
    }

    #[test]
    fn pr_converges_toward_stationary_mass() {
        let g = small_graph();
        let mut cpu = pr(&g, 3);
        cpu.run(100_000_000).unwrap();
        assert!(cpu.is_halted());
        // Ranks are positive and bounded.
        let n = g.num_vertices() as u64;
        let mut sum = 0u64;
        for v in 0..n {
            let r = cpu.mem.read_u64(layout::ARRAY_B + 8 * v);
            assert!(r > 0, "vertex {v} rank zero");
            sum += r;
        }
        let mean = sum / n;
        assert!(mean > 1 << 16, "ranks retained mass: mean {mean}");
    }

    #[test]
    fn cc_labels_connected_components_consistently() {
        let g = small_graph();
        let mut cpu = cc(&g, 64);
        cpu.run(400_000_000).unwrap();
        assert!(cpu.is_halted());
        // Every edge's endpoints share a label after convergence.
        for u in 0..g.num_vertices() {
            let cu = cpu.mem.read_u64(layout::ARRAY_A + 8 * u as u64);
            for &v in g.neighbors_of(u) {
                let cv = cpu.mem.read_u64(layout::ARRAY_A + 8 * v);
                assert_eq!(cu, cv, "edge ({u},{v}) labels");
            }
        }
    }

    #[test]
    fn cc_sv_roots_stabilize() {
        let g = Graph::generate(GraphKind::Uniform, 1_000, 3);
        let mut cpu = cc_sv(&g, 32);
        cpu.run(400_000_000).unwrap();
        assert!(cpu.is_halted());
        for u in 0..g.num_vertices() {
            let cu = cpu.mem.read_u64(layout::ARRAY_A + 8 * u as u64);
            for &v in g.neighbors_of(u) {
                let cv = cpu.mem.read_u64(layout::ARRAY_A + 8 * v);
                assert_eq!(cu, cv, "edge ({u},{v}) labels");
            }
        }
    }

    #[test]
    fn sssp_distances_respect_triangle_inequality() {
        let g = Graph::generate(GraphKind::Uniform, 800, 4);
        let mut cpu = sssp(&g, 0, 64, 11);
        cpu.run(400_000_000).unwrap();
        assert!(cpu.is_halted());
        let dist = |v: u64| -> u64 { cpu.mem.read_u64(layout::ARRAY_A + 8 * v) };
        assert_eq!(dist(0), 0);
        // Distances converged: no edge offers an improvement. Recompute
        // weights with the generator's deterministic stream.
        let mut rng = SmallRng::seed_from_u64(11);
        for u in 0..g.num_vertices() {
            for &v in g.neighbors_of(u) {
                let w = rng.gen_range(1..64u64);
                let du = dist(u as u64);
                if du != u64::MAX {
                    assert!(dist(v) <= du + w, "edge ({u},{v},{w}) still relaxable");
                }
            }
        }
    }

    #[test]
    fn tc_matches_host_triangle_count() {
        let g = Graph::generate(GraphKind::Uniform, 400, 8);
        let mut cpu = tc(&g);
        cpu.run(400_000_000).unwrap();
        assert!(cpu.is_halted());
        // Host reference: count triangles via sorted-list intersection.
        let mut expected = 0u64;
        for u in 0..g.num_vertices() {
            let mut nu: Vec<u64> = g.neighbors_of(u).to_vec();
            nu.sort_unstable();
            for &v in &nu {
                if (v as usize) < u {
                    let mut nv: Vec<u64> = g.neighbors_of(v as usize).to_vec();
                    nv.sort_unstable();
                    let (mut p, mut q) = (0, 0);
                    while p < nv.len() && q < nu.len() {
                        use std::cmp::Ordering;
                        match nv[p].cmp(&nu[q]) {
                            Ordering::Less => p += 1,
                            Ordering::Greater => q += 1,
                            Ordering::Equal => {
                                expected += 1;
                                p += 1;
                                q += 1;
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(cpu.reg(Reg::S6), expected);
    }

    #[test]
    fn bc_sigma_counts_paths() {
        let g = small_graph();
        let mut cpu = bc(&g, 0);
        cpu.run(200_000_000).unwrap();
        assert!(cpu.is_halted());
        // Source sigma is 1; every reachable vertex has sigma >= 1.
        assert_eq!(cpu.mem.read_u64(layout::ARRAY_D), 1);
        let reference = host_bfs(&g, 0);
        for (v, &p) in reference.iter().enumerate() {
            if p != u64::MAX && v != 0 {
                let sigma = cpu.mem.read_u64(layout::ARRAY_D + 8 * v as u64);
                assert!(sigma >= 1, "vertex {v} sigma {sigma}");
            }
        }
    }
}
