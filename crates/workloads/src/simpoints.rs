//! SimPoint-style representative-region selection (paper §VI).
//!
//! The paper evaluates up to five 100M-instruction SimPoints per benchmark
//! and aggregates with a weighted harmonic mean of IPCs. This module
//! implements the same methodology at reproduction scale:
//!
//! 1. a functional profiling pass splits execution into fixed-length
//!    intervals and collects a **basic-block vector** (BBV) per interval —
//!    how often each branch-bounded region executed;
//! 2. k-means clustering over the (L1-normalized) BBVs groups intervals
//!    into phases;
//! 3. the interval closest to each centroid becomes that phase's
//!    representative region, weighted by the cluster's share of execution.
//!
//! The returned [`SimPoint`]s carry the instruction offsets at which a
//! timing simulation should start, plus weights for
//! [`weighted_harmonic_mean_ipc`](phelps_uarch::stats::weighted_harmonic_mean_ipc).

use phelps_isa::Cpu;
use std::collections::HashMap;

/// One selected representative region.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SimPoint {
    /// Instruction offset at which the region begins.
    pub start_inst: u64,
    /// Share of total execution this region represents (sums to 1 across
    /// the returned set).
    pub weight: f64,
    /// Cluster id (phase).
    pub phase: usize,
}

/// Profiling + clustering configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimPointConfig {
    /// Instructions per profiling interval.
    pub interval_len: u64,
    /// Maximum number of regions (clusters) to select (the paper uses up
    /// to 5).
    pub max_points: usize,
    /// k-means iterations.
    pub kmeans_iters: usize,
}

impl Default for SimPointConfig {
    fn default() -> SimPointConfig {
        SimPointConfig {
            interval_len: 100_000,
            max_points: 5,
            kmeans_iters: 12,
        }
    }
}

/// A basic-block vector: execution counts keyed by basic-block leader PC,
/// L1-normalized at comparison time.
#[derive(Clone, Debug, Default)]
struct Bbv {
    counts: HashMap<u64, u64>,
    total: u64,
}

impl Bbv {
    fn bump(&mut self, leader: u64, insts: u64) {
        *self.counts.entry(leader).or_insert(0) += insts;
        self.total += insts;
    }

    /// L1 distance between normalized vectors.
    fn distance(&self, other: &Bbv) -> f64 {
        if self.total == 0 || other.total == 0 {
            return 2.0;
        }
        let mut d = 0.0;
        for (k, v) in &self.counts {
            let a = *v as f64 / self.total as f64;
            let b = other.counts.get(k).copied().unwrap_or(0) as f64 / other.total as f64;
            d += (a - b).abs();
        }
        for (k, v) in &other.counts {
            if !self.counts.contains_key(k) {
                d += *v as f64 / other.total as f64;
            }
        }
        d
    }

    fn accumulate(&mut self, other: &Bbv) {
        for (k, v) in &other.counts {
            *self.counts.entry(*k).or_insert(0) += v;
        }
        self.total += other.total;
    }
}

/// Profiles `cpu` functionally for up to `max_insts` instructions and
/// selects representative regions.
///
/// The CPU is consumed (its architectural state advances); callers re-create
/// the workload for the subsequent timing runs.
pub fn select_simpoints(mut cpu: Cpu, max_insts: u64, cfg: &SimPointConfig) -> Vec<SimPoint> {
    // --- Pass 1: interval BBVs. ---
    let mut intervals: Vec<Bbv> = Vec::new();
    let mut current = Bbv::default();
    let mut block_leader = cpu.pc();
    let mut block_len = 0u64;
    let mut executed = 0u64;
    while executed < max_insts && !cpu.is_halted() {
        let Ok(rec) = cpu.step() else { break };
        executed += 1;
        block_len += 1;
        let ends_block = rec.inst.is_control() || matches!(rec.inst, phelps_isa::Inst::Halt);
        if ends_block {
            current.bump(block_leader, block_len);
            block_leader = rec.next_pc;
            block_len = 0;
        }
        if executed.is_multiple_of(cfg.interval_len) {
            if block_len > 0 {
                current.bump(block_leader, block_len);
                block_len = 0;
            }
            intervals.push(std::mem::take(&mut current));
        }
    }
    if current.total > 0 {
        intervals.push(current);
    }
    if intervals.is_empty() {
        return Vec::new();
    }

    // --- Pass 2: k-means over BBVs (deterministic farthest-point init). ---
    let k = cfg.max_points.min(intervals.len()).max(1);
    let mut centroid_idx: Vec<usize> = vec![0];
    while centroid_idx.len() < k {
        let far = (0..intervals.len())
            .max_by(|&a, &b| {
                let da = centroid_idx
                    .iter()
                    .map(|&c| intervals[a].distance(&intervals[c]))
                    .fold(f64::MAX, f64::min);
                let db = centroid_idx
                    .iter()
                    .map(|&c| intervals[b].distance(&intervals[c]))
                    .fold(f64::MAX, f64::min);
                da.partial_cmp(&db).expect("finite distances")
            })
            .expect("nonempty");
        if centroid_idx.contains(&far) {
            break;
        }
        centroid_idx.push(far);
    }
    let mut centroids: Vec<Bbv> = centroid_idx.iter().map(|&i| intervals[i].clone()).collect();

    let mut assignment = vec![0usize; intervals.len()];
    for _ in 0..cfg.kmeans_iters {
        let mut changed = false;
        for (i, iv) in intervals.iter().enumerate() {
            let best = (0..centroids.len())
                .min_by(|&a, &b| {
                    iv.distance(&centroids[a])
                        .partial_cmp(&iv.distance(&centroids[b]))
                        .expect("finite distances")
                })
                .expect("k >= 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Recompute centroids as cluster sums (equivalent to means under
        // L1-normalized comparison).
        let mut next: Vec<Bbv> = (0..centroids.len()).map(|_| Bbv::default()).collect();
        for (i, iv) in intervals.iter().enumerate() {
            next[assignment[i]].accumulate(iv);
        }
        for (c, n) in centroids.iter_mut().zip(next) {
            if n.total > 0 {
                *c = n;
            }
        }
        if !changed {
            break;
        }
    }

    // --- Pass 3: representatives + weights. ---
    let mut points = Vec::new();
    for (c, centroid) in centroids.iter().enumerate() {
        let members: Vec<usize> = (0..intervals.len())
            .filter(|&i| assignment[i] == c)
            .collect();
        if members.is_empty() {
            continue;
        }
        let rep = members
            .iter()
            .copied()
            .min_by(|&a, &b| {
                intervals[a]
                    .distance(centroid)
                    .partial_cmp(&intervals[b].distance(centroid))
                    .expect("finite distances")
            })
            .expect("nonempty cluster");
        points.push(SimPoint {
            start_inst: rep as u64 * cfg.interval_len,
            weight: members.len() as f64 / intervals.len() as f64,
            phase: c,
        });
    }
    points.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("finite weights"));
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use phelps_isa::{Asm, Reg};

    /// A two-phase program: a long arithmetic phase then a long memory
    /// phase. SimPoints must find both phases with sensible weights.
    fn two_phase_cpu(phase_iters: i64) -> Cpu {
        let mut a = Asm::new(0x1000);
        a.li(Reg::A1, phase_iters);
        a.label("phase1");
        a.addi(Reg::A3, Reg::A3, 1);
        a.xor(Reg::A4, Reg::A4, Reg::A3);
        a.slli(Reg::A5, Reg::A3, 1);
        a.addi(Reg::A1, Reg::A1, -1);
        a.bne(Reg::A1, Reg::ZERO, "phase1");
        a.li(Reg::A1, phase_iters);
        a.li(Reg::A0, 0x100000);
        a.label("phase2");
        a.ld(Reg::T0, Reg::A0, 0);
        a.add(Reg::A3, Reg::A3, Reg::T0);
        a.addi(Reg::A0, Reg::A0, 8);
        a.addi(Reg::A1, Reg::A1, -1);
        a.bne(Reg::A1, Reg::ZERO, "phase2");
        a.halt();
        Cpu::new(a.assemble().unwrap())
    }

    #[test]
    fn finds_both_phases() {
        let cpu = two_phase_cpu(40_000);
        let cfg = SimPointConfig {
            interval_len: 20_000,
            max_points: 4,
            kmeans_iters: 10,
        };
        let points = select_simpoints(cpu, 500_000, &cfg);
        assert!(points.len() >= 2, "two phases found: {points:?}");
        let total: f64 = points.iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to 1: {total}");
        // The two top points come from different phases of the program
        // (one early, one late).
        let starts: Vec<u64> = points.iter().map(|p| p.start_inst).collect();
        assert!(
            starts.iter().any(|&s| s < 200_000) && starts.iter().any(|&s| s >= 200_000),
            "representatives span both phases: {starts:?}"
        );
    }

    #[test]
    fn uniform_program_collapses_to_one_heavy_point() {
        let cpu = two_phase_cpu(200_000); // profile only phase 1
        let cfg = SimPointConfig {
            interval_len: 25_000,
            max_points: 5,
            kmeans_iters: 10,
        };
        let points = select_simpoints(cpu, 400_000, &cfg);
        assert!(!points.is_empty());
        assert!(
            points[0].weight > 0.7,
            "one dominant phase: {:?}",
            points[0]
        );
    }

    #[test]
    fn short_program_yields_single_point() {
        let cpu = two_phase_cpu(100);
        let points = select_simpoints(cpu, 10_000, &SimPointConfig::default());
        assert_eq!(points.len(), 1);
        assert!((points[0].weight - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_selection() {
        let cfg = SimPointConfig {
            interval_len: 10_000,
            max_points: 3,
            kmeans_iters: 8,
        };
        let a = select_simpoints(two_phase_cpu(20_000), 300_000, &cfg);
        let b = select_simpoints(two_phase_cpu(20_000), 300_000, &cfg);
        assert_eq!(a, b);
    }
}
