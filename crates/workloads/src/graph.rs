//! Synthetic graph generators and the CSR layout shared by all GAP-style
//! kernels.
//!
//! The paper evaluates GAP on the roadNet-CA input: a road network with
//! mean degree ≈ 2.8, bounded maximum degree, and a very large diameter.
//! [`GraphKind::RoadNetwork`] reproduces that character as a 2D grid with
//! random perturbations (diagonal shortcuts and deletions). For the
//! Fig. 15b input study, [`GraphKind::PowerLaw`] produces a web-google-like
//! skewed-degree graph and [`GraphKind::Uniform`] an Erdős–Rényi-style
//! graph.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Kind of synthetic input graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GraphKind {
    /// roadNet-CA-like: low degree, huge diameter (grid + perturbation).
    RoadNetwork,
    /// web-google-like: power-law degrees, small diameter.
    PowerLaw,
    /// Uniform random graph with the given mean degree.
    Uniform,
}

/// An undirected graph in CSR form (each edge stored in both directions).
#[derive(Clone, Debug)]
pub struct Graph {
    /// Per-vertex neighbor-range offsets (`n + 1` entries).
    pub offsets: Vec<u64>,
    /// Flattened neighbor lists.
    pub neighbors: Vec<u64>,
}

impl Graph {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges (twice the undirected count).
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Mean (directed) degree.
    pub fn mean_degree(&self) -> f64 {
        self.num_edges() as f64 / self.num_vertices() as f64
    }

    /// The neighbor slice of vertex `v`.
    pub fn neighbors_of(&self, v: usize) -> &[u64] {
        &self.neighbors[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Generates a graph of roughly `n` vertices.
    pub fn generate(kind: GraphKind, n: usize, seed: u64) -> Graph {
        match kind {
            GraphKind::RoadNetwork => road_network(n, seed),
            GraphKind::PowerLaw => power_law(n, seed),
            GraphKind::Uniform => uniform(n, 4, seed),
        }
    }

    fn from_adj(adj: Vec<Vec<u64>>) -> Graph {
        let mut offsets = Vec::with_capacity(adj.len() + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for list in &adj {
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len() as u64);
        }
        Graph { offsets, neighbors }
    }
}

fn add_edge(adj: &mut [Vec<u64>], u: usize, v: usize) {
    if u == v || adj[u].contains(&(v as u64)) {
        return;
    }
    adj[u].push(v as u64);
    adj[v].push(u as u64);
}

/// Grid with perturbations: mean degree close to roadNet-CA's ≈ 2.8.
fn road_network(n: usize, seed: u64) -> Graph {
    let side = (n as f64).sqrt().ceil() as usize;
    let n = side * side;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut adj: Vec<Vec<u64>> = vec![Vec::new(); n];
    let at = |r: usize, c: usize| r * side + c;
    for r in 0..side {
        for c in 0..side {
            // Grid edges, with ~25% of them missing (dead ends, rivers).
            if c + 1 < side && rng.gen_range(0..100) >= 25 {
                add_edge(&mut adj, at(r, c), at(r, c + 1));
            }
            if r + 1 < side && rng.gen_range(0..100) >= 25 {
                add_edge(&mut adj, at(r, c), at(r + 1, c));
            }
            // Occasional diagonal shortcut (highway ramps).
            if r + 1 < side && c + 1 < side && rng.gen_range(0..100) < 4 {
                add_edge(&mut adj, at(r, c), at(r + 1, c + 1));
            }
        }
    }
    // Stitch isolated vertices to a random nearby vertex so traversals
    // reach most of the graph.
    for v in 0..n {
        if adj[v].is_empty() {
            let u = if v + 1 < n { v + 1 } else { v - 1 };
            add_edge(&mut adj, v, u);
        }
    }
    Graph::from_adj(adj)
}

/// Preferential-attachment-style power-law graph.
fn power_law(n: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut adj: Vec<Vec<u64>> = vec![Vec::new(); n];
    let mut targets: Vec<usize> = vec![0, 1];
    add_edge(&mut adj, 0, 1);
    for v in 2..n {
        let m = 1 + (rng.gen_range(0..100) < 40) as usize + (rng.gen_range(0..100) < 15) as usize;
        for _ in 0..m {
            let t = targets[rng.gen_range(0..targets.len())];
            add_edge(&mut adj, v, t);
            targets.push(t);
        }
        targets.push(v);
    }
    Graph::from_adj(adj)
}

/// Uniform random graph with `mean_degree` expected undirected degree.
fn uniform(n: usize, mean_degree: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut adj: Vec<Vec<u64>> = vec![Vec::new(); n];
    let edges = n * mean_degree / 2;
    for _ in 0..edges {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        add_edge(&mut adj, u, v);
    }
    for v in 0..n {
        if adj[v].is_empty() {
            let u = rng.gen_range(0..n);
            add_edge(&mut adj, v, if u == v { (v + 1) % n } else { u });
        }
    }
    Graph::from_adj(adj)
}

/// Guest-memory layout used by every graph kernel.
pub mod layout {
    /// Base of the CSR offsets array (`n + 1` doublewords).
    pub const OFFSETS: u64 = 0x0100_0000;
    /// Base of the CSR neighbors array (`m` doublewords).
    pub const NEIGHBORS: u64 = 0x0400_0000;
    /// First per-kernel array (parent / comp / dist / depth ...).
    pub const ARRAY_A: u64 = 0x0c00_0000;
    /// Second per-kernel array (frontier / sigma / rank ...).
    pub const ARRAY_B: u64 = 0x1400_0000;
    /// Third per-kernel array (next frontier / delta / new rank ...).
    pub const ARRAY_C: u64 = 0x1c00_0000;
    /// Fourth per-kernel array (work queues, orderings).
    pub const ARRAY_D: u64 = 0x2400_0000;
    /// Scratch cell region (counters, tails).
    pub const SCRATCH: u64 = 0x2c00_0000;
}

/// Writes the CSR arrays into guest memory at the standard layout.
pub fn write_csr(mem: &mut phelps_isa::Memory, g: &Graph) {
    for (i, off) in g.offsets.iter().enumerate() {
        mem.write_u64(layout::OFFSETS + 8 * i as u64, *off);
    }
    for (i, v) in g.neighbors.iter().enumerate() {
        mem.write_u64(layout::NEIGHBORS + 8 * i as u64, *v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn road_network_character() {
        let g = Graph::generate(GraphKind::RoadNetwork, 10_000, 1);
        let d = g.mean_degree();
        assert!(
            (2.0..4.0).contains(&d),
            "road networks have low mean degree, got {d}"
        );
        let max_deg = (0..g.num_vertices())
            .map(|v| g.neighbors_of(v).len())
            .max()
            .unwrap();
        assert!(max_deg <= 8, "bounded degree, got {max_deg}");
    }

    #[test]
    fn power_law_has_hubs() {
        let g = Graph::generate(GraphKind::PowerLaw, 10_000, 2);
        let max_deg = (0..g.num_vertices())
            .map(|v| g.neighbors_of(v).len())
            .max()
            .unwrap();
        assert!(max_deg > 50, "power-law graphs have hubs, got {max_deg}");
    }

    #[test]
    fn csr_is_well_formed() {
        for kind in [
            GraphKind::RoadNetwork,
            GraphKind::PowerLaw,
            GraphKind::Uniform,
        ] {
            let g = Graph::generate(kind, 3000, 3);
            assert_eq!(g.offsets[0], 0);
            assert_eq!(*g.offsets.last().unwrap() as usize, g.neighbors.len());
            for v in 0..g.num_vertices() {
                assert!(g.offsets[v] <= g.offsets[v + 1], "monotone offsets");
                for &u in g.neighbors_of(v) {
                    assert!((u as usize) < g.num_vertices(), "valid neighbor");
                    assert!(
                        g.neighbors_of(u as usize).contains(&(v as u64)),
                        "symmetric edges ({v} -> {u})"
                    );
                }
            }
        }
    }

    #[test]
    fn no_isolated_vertices() {
        for kind in [GraphKind::RoadNetwork, GraphKind::Uniform] {
            let g = Graph::generate(kind, 2000, 7);
            for v in 0..g.num_vertices() {
                assert!(!g.neighbors_of(v).is_empty(), "vertex {v} isolated");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Graph::generate(GraphKind::RoadNetwork, 2000, 42);
        let b = Graph::generate(GraphKind::RoadNetwork, 2000, 42);
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.neighbors, b.neighbors);
        let c = Graph::generate(GraphKind::RoadNetwork, 2000, 43);
        assert_ne!(a.neighbors, c.neighbors, "different seeds differ");
    }

    #[test]
    fn write_csr_roundtrip() {
        let g = Graph::generate(GraphKind::Uniform, 500, 9);
        let mut mem = phelps_isa::Memory::new();
        write_csr(&mut mem, &g);
        assert_eq!(mem.read_u64(layout::OFFSETS), 0);
        let n = g.num_vertices() as u64;
        assert_eq!(mem.read_u64(layout::OFFSETS + 8 * n), g.num_edges() as u64);
        assert_eq!(mem.read_u64(layout::NEIGHBORS), g.neighbors[0]);
    }
}
