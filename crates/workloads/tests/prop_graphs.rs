//! Property tests: every generated graph is a well-formed, symmetric CSR
//! with no isolated vertices, at any size and seed.

use phelps_workloads::graph::{Graph, GraphKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generated_graphs_are_well_formed(
        n in 64usize..2000,
        seed in any::<u64>(),
        kind_idx in 0usize..3,
    ) {
        let kind = [GraphKind::RoadNetwork, GraphKind::PowerLaw, GraphKind::Uniform][kind_idx];
        let g = Graph::generate(kind, n, seed);
        // CSR well-formedness.
        prop_assert_eq!(g.offsets[0], 0);
        prop_assert_eq!(*g.offsets.last().unwrap() as usize, g.neighbors.len());
        for v in 0..g.num_vertices() {
            prop_assert!(g.offsets[v] <= g.offsets[v + 1]);
            prop_assert!(!g.neighbors_of(v).is_empty(), "no isolated vertices");
            for &u in g.neighbors_of(v) {
                prop_assert!((u as usize) < g.num_vertices());
                prop_assert!(u as usize != v, "no self loops");
                prop_assert!(
                    g.neighbors_of(u as usize).contains(&(v as u64)),
                    "symmetry {v}<->{u}"
                );
            }
        }
    }

    #[test]
    fn generation_deterministic_per_seed(n in 64usize..512, seed in any::<u64>()) {
        let a = Graph::generate(GraphKind::RoadNetwork, n, seed);
        let b = Graph::generate(GraphKind::RoadNetwork, n, seed);
        prop_assert_eq!(a.offsets, b.offsets);
        prop_assert_eq!(a.neighbors, b.neighbors);
    }
}
