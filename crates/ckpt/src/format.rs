//! Versioned, CRC-checked binary encoding of one [`Snapshot`].
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size   field
//! 0       8      magic  b"PHELPSCK"
//! 8       4      format version (currently 1)
//! 12      16     128-bit region content hash (two u64 halves)
//! 28      8      start_inst — region start this checkpoint serves
//! 36      8      pc
//! 44      8      retired — instructions retired at the snapshot point
//! 52      1      halted flag (0/1)
//! 53      8*32   integer register file x0..x31
//! 309     8      resident page count  N
//! 317     N*     pages: base address (8) + PAGE_BYTES contents each,
//!                strictly ascending base, all-zero pages elided
//! end-4   4      CRC-32 (IEEE) over every preceding byte incl. magic
//! ```
//!
//! Decoding is paranoid: every length, flag, alignment, and ordering is
//! checked, and any violation is a typed [`FormatError`] — callers turn
//! that into a *miss plus warning*, never a panic, mirroring the result
//! cache's corrupt-entry semantics.

use crate::{RegionKey, Snapshot};
use phelps_isa::{CpuState, Memory, NUM_REGS, PAGE_BYTES};

pub(crate) const MAGIC: &[u8; 8] = b"PHELPSCK";
pub(crate) const VERSION: u32 = 1;

/// Why a checkpoint file failed to decode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FormatError {
    /// File shorter than a field it promised.
    Truncated,
    /// Leading magic bytes are not `PHELPSCK`.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// CRC-32 over the payload does not match the trailer.
    BadCrc,
    /// Embedded content hash differs from the expected key (stale file or
    /// filename-hash collision).
    StaleKey,
    /// A structural invariant failed (named for diagnostics).
    Corrupt(&'static str),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Truncated => f.write_str("truncated"),
            FormatError::BadMagic => f.write_str("bad magic"),
            FormatError::BadVersion(v) => write!(f, "unsupported version {v}"),
            FormatError::BadCrc => f.write_str("CRC mismatch"),
            FormatError::StaleKey => f.write_str("stale content hash"),
            FormatError::Corrupt(what) => write!(f, "corrupt field: {what}"),
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serializes a snapshot for `key`. All-zero pages are elided: absent
/// pages read as zero, so the restored memory is semantically identical
/// and the file only pays for meaningful residency.
pub fn encode(key: &RegionKey, snap: &Snapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(512 + snap.state.mem.resident_bytes());
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, key.hash[0]);
    put_u64(&mut out, key.hash[1]);
    put_u64(&mut out, snap.start_inst);
    put_u64(&mut out, snap.state.pc);
    put_u64(&mut out, snap.state.retired);
    out.push(snap.state.halted as u8);
    for r in snap.state.regs {
        put_u64(&mut out, r);
    }
    let pages: Vec<(u64, &[u8; PAGE_BYTES])> = snap
        .state
        .mem
        .iter_pages()
        .filter(|(_, p)| p.iter().any(|&b| b != 0))
        .collect();
    put_u64(&mut out, pages.len() as u64);
    for (base, contents) in pages {
        put_u64(&mut out, base);
        out.extend_from_slice(&contents[..]);
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        let end = self.pos.checked_add(n).ok_or(FormatError::Truncated)?;
        if end > self.bytes.len() {
            return Err(FormatError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, FormatError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FormatError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u8(&mut self) -> Result<u8, FormatError> {
        Ok(self.take(1)?[0])
    }
}

/// Decodes and fully validates a snapshot against the expected `key`.
pub fn decode(bytes: &[u8], key: &RegionKey) -> Result<Snapshot, FormatError> {
    // CRC and magic first: a file that fails these tells us nothing
    // trustworthy about its other fields.
    if bytes.len() < MAGIC.len() + 4 + 4 {
        return Err(FormatError::Truncated);
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(trailer.try_into().unwrap());
    if crc32(payload) != stored_crc {
        return Err(FormatError::BadCrc);
    }
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    if r.take(MAGIC.len())? != MAGIC {
        return Err(FormatError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(FormatError::BadVersion(version));
    }
    let hash = [r.u64()?, r.u64()?];
    if hash != key.hash {
        return Err(FormatError::StaleKey);
    }
    let start_inst = r.u64()?;
    if start_inst != key.start_inst {
        return Err(FormatError::StaleKey);
    }
    let pc = r.u64()?;
    let retired = r.u64()?;
    if retired > start_inst {
        return Err(FormatError::Corrupt("retired beyond start_inst"));
    }
    let halted = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(FormatError::Corrupt("halted flag")),
    };
    let mut regs = [0u64; NUM_REGS];
    for reg in &mut regs {
        *reg = r.u64()?;
    }
    if regs[0] != 0 {
        return Err(FormatError::Corrupt("nonzero x0"));
    }
    let page_count = r.u64()?;
    let mut pages = Vec::new();
    let mut prev_base: Option<u64> = None;
    for _ in 0..page_count {
        let base = r.u64()?;
        if base % PAGE_BYTES as u64 != 0 {
            return Err(FormatError::Corrupt("unaligned page base"));
        }
        if prev_base.is_some_and(|p| base <= p) {
            return Err(FormatError::Corrupt("page order"));
        }
        prev_base = Some(base);
        let contents: Box<[u8; PAGE_BYTES]> = Box::new(r.take(PAGE_BYTES)?.try_into().unwrap());
        pages.push((base, contents));
    }
    if r.pos != payload.len() {
        return Err(FormatError::Corrupt("trailing bytes"));
    }
    Ok(Snapshot {
        state: CpuState {
            pc,
            regs,
            mem: Memory::from_pages(pages),
            halted,
            retired,
        },
        start_inst,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (RegionKey, Snapshot) {
        let key = RegionKey {
            label: "t".to_string(),
            start_inst: 500,
            hash: [0x1111_2222_3333_4444, 0x5555_6666_7777_8888],
        };
        let mut mem = Memory::new();
        mem.write_u64(0x2008, 0xdead_beef);
        mem.write_u8(0x9000, 0); // touched-but-zero page: elided on encode
        let mut regs = [0u64; NUM_REGS];
        regs[10] = 42;
        let snap = Snapshot {
            state: CpuState {
                pc: 0x1040,
                regs,
                mem,
                halted: false,
                retired: 480,
            },
            start_inst: 500,
        };
        (key, snap)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_state() {
        let (key, snap) = sample();
        let bytes = encode(&key, &snap);
        let back = decode(&bytes, &key).expect("decodes");
        assert_eq!(back.start_inst, 500);
        assert_eq!(back.state.pc, 0x1040);
        assert_eq!(back.state.retired, 480);
        assert!(!back.state.halted);
        assert_eq!(back.state.regs[10], 42);
        assert_eq!(back.state.mem.first_difference(&snap.state.mem), None);
        // The zero page was elided representationally...
        assert_eq!(back.state.mem.resident_pages(), 1);
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let (key, snap) = sample();
        let bytes = encode(&key, &snap);
        for cut in [0, 5, 11, 40, 300, bytes.len() - 1] {
            let err = decode(&bytes[..cut], &key).unwrap_err();
            assert!(
                matches!(err, FormatError::Truncated | FormatError::BadCrc),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn single_flipped_byte_fails_crc() {
        let (key, snap) = sample();
        let bytes = encode(&key, &snap);
        for &pos in &[0usize, 12, 60, 320, bytes.len() - 5] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert_eq!(
                decode(&bad, &key).unwrap_err(),
                FormatError::BadCrc,
                "pos {pos}"
            );
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let (key, snap) = sample();
        let mut bytes = encode(&key, &snap);
        bytes[8] = 99; // version field
        let crc = crc32(&bytes[..bytes.len() - 4]);
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode(&bytes, &key).unwrap_err(),
            FormatError::BadVersion(99)
        );
    }

    #[test]
    fn stale_key_is_rejected() {
        let (key, snap) = sample();
        let bytes = encode(&key, &snap);
        let mut other = key.clone();
        other.hash[1] ^= 1;
        assert_eq!(decode(&bytes, &other).unwrap_err(), FormatError::StaleKey);
        let mut other_start = key.clone();
        other_start.start_inst += 1;
        assert_eq!(
            decode(&bytes, &other_start).unwrap_err(),
            FormatError::StaleKey
        );
    }

    #[test]
    fn corrupt_retired_is_rejected() {
        let (key, mut snap) = sample();
        snap.state.retired = snap.start_inst + 1; // impossible
        let bytes = encode(&key, &snap);
        assert_eq!(
            decode(&bytes, &key).unwrap_err(),
            FormatError::Corrupt("retired beyond start_inst")
        );
    }
}
