//! # phelps-ckpt
//!
//! Architectural checkpointing for SimPoint region runs.
//!
//! Every region run used to pay a functional fast-forward from
//! instruction 0 to the region's `start_inst` — O(`start_inst`) emulated
//! instructions per cell, and the dominant wall-clock cost of the figure
//! matrix once results themselves are cached. This crate captures the full
//! architectural state of the functional emulator (PC, integer register
//! file, sparse memory pages, retired count) at each `start_inst` during a
//! *single* fast-forward pass, persists it in a versioned, CRC-checked
//! binary file, and restores it later in O(resident pages).
//!
//! ## Keying
//!
//! Checkpoints are pure functions of *architecture*, not of any timing
//! configuration, so one file serves every mode/config combination. A
//! [`RegionKey`] carries a 128-bit content hash over the workload label,
//! the program text, the CPU's initial architectural state (PC, registers,
//! resident memory image), and `start_inst`. The hash both names the file
//! and is embedded in it; a collision on the file name or a stale file
//! therefore decodes as [`format::FormatError::StaleKey`] and degrades to
//! a miss, never a wrong restore.
//!
//! ## Warmup
//!
//! A checkpoint may be captured `lead = start_inst - state.retired`
//! instructions *before* the region so that [`resume`] can replay the tail
//! through [`phelps_isa::Cpu::step`], handing the last `W` replayed
//! [`ExecRecord`]s to the caller for functional warming of caches and the
//! branch predictor. With `W = 0` the restored CPU is bit-for-bit the CPU
//! the fast-forward path would have produced, and no warming records are
//! emitted — today's behavior exactly.
//!
//! ```
//! use phelps_ckpt::{capture_snapshots, region_key, resume, CheckpointStore};
//! use phelps_isa::{Asm, Cpu, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new(0);
//! a.li(Reg::A0, 0);
//! a.label("loop");
//! a.addi(Reg::A0, Reg::A0, 1);
//! a.j("loop");
//! let prog = a.assemble()?;
//!
//! let key = region_key("spin", &Cpu::new(prog.clone()), 1_000);
//! let snaps = capture_snapshots(&mut Cpu::new(prog.clone()), &[1_000], 0)?;
//! let restored = resume(Cpu::new(prog), &snaps[0], 0)?;
//! assert_eq!(restored.cpu.retired(), 1_000);
//! assert_eq!(key.start_inst, 1_000);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod format;

use phelps_isa::{encode as encode_inst, Cpu, CpuState, EmuError, ExecRecord};
use std::path::{Path, PathBuf};

pub use format::FormatError;

/// Identifies the checkpoint for one (workload, program+initial state,
/// region start) triple.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RegionKey {
    /// Human-readable workload label (diagnostics only — correctness rests
    /// on the content hash, which covers the label too).
    pub label: String,
    /// Region start in retired instructions.
    pub start_inst: u64,
    /// 128-bit content hash (two independent 64-bit FNV-1a streams).
    pub hash: [u64; 2],
}

/// One captured checkpoint: the architectural state `lead` instructions
/// before `start_inst` (where `lead = start_inst - state.retired`, zero
/// for an exactly-at-the-region capture).
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Architectural state at the capture point.
    pub state: CpuState,
    /// The region start this snapshot serves.
    pub start_inst: u64,
}

impl Snapshot {
    /// Instructions between the capture point and the region start —
    /// the replay budget available for functional warming.
    pub fn lead(&self) -> u64 {
        self.start_inst - self.state.retired
    }
}

/// A CPU positioned at a region start, plus the warming trace.
#[derive(Debug)]
pub struct RestoredRegion {
    /// The CPU, architecturally identical to one fast-forwarded to
    /// `start_inst`.
    pub cpu: Cpu,
    /// Records of the last `min(W, lead)` replayed instructions, oldest
    /// first, for functional warming of the timing model.
    pub warm: Vec<ExecRecord>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Two independent FNV-1a streams: the second perturbs each input byte so
/// the halves do not co-collide. 64-bit FNV alone names cache files
/// elsewhere in the workspace, but a checkpoint's content *is* its hash
/// (the raw input is megabytes and not embeddable), so we widen to 128
/// bits instead of embedding a fingerprint string.
#[derive(Clone, Copy)]
struct ContentHasher {
    a: u64,
    b: u64,
}

impl ContentHasher {
    fn new() -> ContentHasher {
        ContentHasher {
            a: FNV_OFFSET,
            b: FNV_OFFSET ^ 0x517c_c1b7_2722_0a95,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &x in bytes {
            self.a = (self.a ^ u64::from(x)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(x ^ 0xa5)).wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(self) -> [u64; 2] {
        [self.a, self.b]
    }
}

/// Computes the region key for `cpu` in its *current* state. Call with
/// the freshly-built workload CPU (before any fast-forward): the hash
/// covers the label, program text, PC, registers, the resident memory
/// image, and `start_inst` itself.
pub fn region_key(label: &str, cpu: &Cpu, start_inst: u64) -> RegionKey {
    let mut h = ContentHasher::new();
    h.write(label.as_bytes());
    h.write_u64(cpu.program().base());
    h.write_u64(cpu.program().len() as u64);
    for (pc, inst) in cpu.program().iter() {
        match encode_inst(inst, pc) {
            Ok(word) => h.write(&word.to_le_bytes()),
            // Unencodable (e.g. wide immediates): hash the rendering.
            Err(_) => h.write(format!("{inst:?}").as_bytes()),
        }
    }
    h.write_u64(cpu.pc());
    h.write_u64(cpu.retired());
    for r in phelps_isa::Reg::all() {
        h.write_u64(cpu.reg(r));
    }
    for (base, page) in cpu.mem.iter_pages() {
        if page.iter().all(|&b| b == 0) {
            continue; // semantic hash: residency of zero pages is noise
        }
        h.write_u64(base);
        h.write(&page[..]);
    }
    h.write_u64(start_inst);
    RegionKey {
        label: label.to_string(),
        start_inst,
        hash: h.finish(),
    }
}

/// Captures snapshots for every start in `starts` (which must be
/// ascending) in one forward pass over `cpu`, each taken `warm_lead`
/// instructions early (clamped at the CPU's current position) so restores
/// can warm-replay up to `warm_lead` instructions.
///
/// If the program halts before a capture point the snapshot records the
/// halted state — restoring it reproduces exactly what fast-forwarding
/// would have seen.
///
/// # Errors
///
/// Propagates [`EmuError::PcOutOfRange`] from the underlying run.
///
/// # Panics
///
/// Panics if `starts` is not ascending or the CPU has already run past
/// the first capture point.
pub fn capture_snapshots(
    cpu: &mut Cpu,
    starts: &[u64],
    warm_lead: u64,
) -> Result<Vec<Snapshot>, EmuError> {
    let mut out = Vec::with_capacity(starts.len());
    let mut prev = None;
    for &start in starts {
        assert!(
            prev.is_none_or(|p| p < start),
            "starts must be strictly ascending"
        );
        prev = Some(start);
        let at = start.saturating_sub(warm_lead).max(cpu.retired());
        assert!(
            at >= cpu.retired(),
            "cpu already ran past capture point {at}"
        );
        cpu.run(at - cpu.retired())?;
        out.push(Snapshot {
            state: cpu.capture_state(),
            start_inst: start,
        });
    }
    Ok(out)
}

/// Restores `snap` into `cpu` (which must be running the same program the
/// snapshot came from — guaranteed when the snapshot was fetched by
/// content-hashed key) and replays up to the region start, returning the
/// last `min(warm_window, lead)` replayed records for functional warming.
///
/// # Errors
///
/// Propagates [`EmuError::PcOutOfRange`] if replay derails — only
/// possible if the caller paired the snapshot with the wrong program.
pub fn resume(mut cpu: Cpu, snap: &Snapshot, warm_window: u64) -> Result<RestoredRegion, EmuError> {
    cpu.restore_state(&snap.state);
    let plain_until = snap.start_inst - warm_window.min(snap.lead());
    while cpu.retired() < plain_until && !cpu.is_halted() {
        cpu.step()?;
    }
    let mut warm = Vec::new();
    while cpu.retired() < snap.start_inst && !cpu.is_halted() {
        warm.push(cpu.step()?);
    }
    Ok(RestoredRegion { cpu, warm })
}

/// On-disk store of checkpoints, one file per [`RegionKey`], named by the
/// key's content hash.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// A store rooted at `dir` (created lazily on first save).
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointStore {
        CheckpointStore { dir: dir.into() }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path a key maps to.
    pub fn path_of(&self, key: &RegionKey) -> PathBuf {
        self.dir
            .join(format!("{:016x}{:016x}.ckpt", key.hash[0], key.hash[1]))
    }

    /// Cheap existence probe (no validation — `load` still decides).
    pub fn contains(&self, key: &RegionKey) -> bool {
        self.path_of(key).is_file()
    }

    /// Loads and validates the checkpoint for `key`. Every failure —
    /// missing file, truncation, CRC mismatch, version skew, stale hash —
    /// is a miss; anything but a missing file additionally warns, so
    /// silent staleness can't hide (same semantics as the result cache).
    pub fn load(&self, key: &RegionKey) -> Option<Snapshot> {
        let path = self.path_of(key);
        let bytes = std::fs::read(&path).ok()?;
        match format::decode(&bytes, key) {
            Ok(snap) => Some(snap),
            Err(e) => {
                eprintln!(
                    "warning: ignoring checkpoint {} for {}@{}: {e} (treated as a miss)",
                    path.display(),
                    key.label,
                    key.start_inst
                );
                None
            }
        }
    }

    /// Persists a snapshot for `key`. Written to a temporary file and
    /// renamed so concurrent readers never observe a torn write (a torn
    /// temp file would fail CRC anyway). The temp name is unique per
    /// save — pid alone is not enough, since sharded runs save the same
    /// key from multiple worker threads at once and a shared temp path
    /// would let one thread's rename steal another's in-progress write.
    /// Errors are reported but non-fatal — the in-memory snapshot is
    /// still usable.
    pub fn save(&self, key: &RegionKey, snap: &Snapshot) {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        debug_assert_eq!(key.start_inst, snap.start_inst);
        let path = self.path_of(key);
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(&self.dir)?;
            let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let tmp = path.with_extension(format!("tmp.{}.{seq}", std::process::id()));
            std::fs::write(&tmp, format::encode(key, snap))?;
            std::fs::rename(&tmp, &path)
        };
        if let Err(e) = write() {
            eprintln!("warning: cannot write checkpoint {}: {e}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phelps_isa::{Asm, Reg};

    fn counting_prog(base: u64) -> phelps_isa::Program {
        let mut a = Asm::new(base);
        a.li(Reg::A0, 0);
        a.li(Reg::A1, 0x8000);
        a.label("loop");
        a.addi(Reg::A0, Reg::A0, 1);
        a.sd(Reg::A0, Reg::A1, 0);
        a.ld(Reg::A2, Reg::A1, 0);
        a.j("loop");
        a.assemble().unwrap()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("phelps-ckpt-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn restored_cpu_matches_fast_forwarded_cpu() {
        let prog = counting_prog(0x1000);
        let mut ff = Cpu::new(prog.clone());
        ff.run(10_000).unwrap();

        let snaps = capture_snapshots(&mut Cpu::new(prog.clone()), &[10_000], 0).unwrap();
        let restored = resume(Cpu::new(prog), &snaps[0], 0).unwrap();
        assert!(restored.warm.is_empty(), "W=0 emits no warming records");
        assert_eq!(restored.cpu.pc(), ff.pc());
        assert_eq!(restored.cpu.retired(), ff.retired());
        assert_eq!(restored.cpu.reg(Reg::A0), ff.reg(Reg::A0));
        assert_eq!(restored.cpu.mem.first_difference(&ff.mem), None);
    }

    #[test]
    fn warm_replay_covers_the_window_and_lands_on_start() {
        let prog = counting_prog(0x1000);
        let mut ff = Cpu::new(prog.clone());
        ff.run(5_000).unwrap();

        // Capture 1000 early; restore with a 300-instruction warm window.
        let snaps = capture_snapshots(&mut Cpu::new(prog.clone()), &[5_000], 1_000).unwrap();
        assert_eq!(snaps[0].lead(), 1_000);
        let restored = resume(Cpu::new(prog), &snaps[0], 300).unwrap();
        assert_eq!(restored.warm.len(), 300);
        assert_eq!(restored.cpu.retired(), 5_000);
        assert_eq!(restored.cpu.pc(), ff.pc());
        assert_eq!(restored.cpu.mem.first_difference(&ff.mem), None);
        // The window is the *last* 300 instructions before the region.
        let mut tail = Cpu::new(counting_prog(0x1000));
        tail.run(4_700).unwrap();
        assert_eq!(restored.warm[0], tail.step().unwrap());
    }

    #[test]
    fn warm_window_larger_than_lead_is_clamped() {
        let prog = counting_prog(0x1000);
        let snaps = capture_snapshots(&mut Cpu::new(prog.clone()), &[1_000], 50).unwrap();
        let restored = resume(Cpu::new(prog), &snaps[0], 10_000).unwrap();
        assert_eq!(restored.warm.len(), 50);
        assert_eq!(restored.cpu.retired(), 1_000);
    }

    #[test]
    fn multi_point_capture_is_single_pass_and_consistent() {
        let prog = counting_prog(0x1000);
        let mut cpu = Cpu::new(prog.clone());
        let snaps = capture_snapshots(&mut cpu, &[1_000, 2_500, 9_000], 0).unwrap();
        assert_eq!(cpu.retired(), 9_000, "pass stopped at the last point");
        for (snap, want) in snaps.iter().zip([1_000u64, 2_500, 9_000]) {
            let mut ff = Cpu::new(prog.clone());
            ff.run(want).unwrap();
            let r = resume(Cpu::new(prog.clone()), snap, 0).unwrap();
            assert_eq!(r.cpu.retired(), want);
            assert_eq!(r.cpu.pc(), ff.pc());
            assert_eq!(r.cpu.reg(Reg::A0), ff.reg(Reg::A0));
            assert_eq!(r.cpu.mem.first_difference(&ff.mem), None);
        }
    }

    #[test]
    fn halting_program_checkpoints_like_fast_forward() {
        let mut a = Asm::new(0);
        a.li(Reg::A0, 3);
        a.label("loop");
        a.addi(Reg::A0, Reg::A0, -1);
        a.bne(Reg::A0, Reg::ZERO, "loop");
        a.halt();
        let prog = a.assemble().unwrap();
        // Program retires 8 instructions then halts; ask for start 100.
        let snaps = capture_snapshots(&mut Cpu::new(prog.clone()), &[100], 0).unwrap();
        assert!(snaps[0].state.halted);
        let r = resume(Cpu::new(prog.clone()), &snaps[0], 0).unwrap();
        assert!(r.cpu.is_halted());
        let mut ff = Cpu::new(prog);
        ff.run(100).unwrap();
        assert_eq!(r.cpu.retired(), ff.retired());
        assert_eq!(r.cpu.pc(), ff.pc());
    }

    #[test]
    fn store_roundtrip_and_sharing_by_content() {
        let dir = tmpdir("store");
        let store = CheckpointStore::new(&dir);
        let prog = counting_prog(0x1000);
        let key = region_key("count", &Cpu::new(prog.clone()), 2_000);
        assert!(!store.contains(&key));
        assert!(store.load(&key).is_none(), "missing file is a silent miss");

        let snaps = capture_snapshots(&mut Cpu::new(prog.clone()), &[2_000], 0).unwrap();
        store.save(&key, &snaps[0]);
        assert!(store.contains(&key));
        let loaded = store.load(&key).expect("hit");
        assert_eq!(loaded.start_inst, 2_000);
        let r = resume(Cpu::new(prog.clone()), &loaded, 0).unwrap();
        assert_eq!(r.cpu.retired(), 2_000);

        // The same workload rebuilt from scratch maps to the same key —
        // that is what shares checkpoints across configs and modes.
        let again = region_key("count", &Cpu::new(prog.clone()), 2_000);
        assert_eq!(again, key);
        // A different label, start, or program does not.
        assert_ne!(
            region_key("other", &Cpu::new(prog.clone()), 2_000).hash,
            key.hash
        );
        assert_ne!(
            region_key("count", &Cpu::new(prog.clone()), 2_001).hash,
            key.hash
        );
        assert_ne!(
            region_key("count", &Cpu::new(counting_prog(0x2000)), 2_000).hash,
            key.hash
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_covers_initial_memory_and_registers() {
        let prog = counting_prog(0x1000);
        let base = region_key("w", &Cpu::new(prog.clone()), 100);
        let mut with_mem = Cpu::new(prog.clone());
        with_mem.mem.write_u64(0x9000, 7);
        assert_ne!(region_key("w", &with_mem, 100).hash, base.hash);
        let mut with_reg = Cpu::new(prog.clone());
        with_reg.set_reg(Reg::A5, 9);
        assert_ne!(region_key("w", &with_reg, 100).hash, base.hash);
        // Touched-but-zero memory is semantic noise and does not change it.
        let mut zero_touch = Cpu::new(prog);
        zero_touch.mem.write_u8(0xf000, 0);
        assert_eq!(region_key("w", &zero_touch, 100).hash, base.hash);
    }

    #[test]
    fn corrupt_files_degrade_to_miss_without_panic() {
        let dir = tmpdir("corrupt");
        let store = CheckpointStore::new(&dir);
        let prog = counting_prog(0x1000);
        let key = region_key("count", &Cpu::new(prog.clone()), 1_500);
        let snaps = capture_snapshots(&mut Cpu::new(prog), &[1_500], 0).unwrap();
        store.save(&key, &snaps[0]);
        let path = store.path_of(&key);
        let good = std::fs::read(&path).unwrap();

        // Truncated.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(store.load(&key).is_none());
        // Bad CRC.
        let mut bad = good.clone();
        bad[100] ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        assert!(store.load(&key).is_none());
        // Wrong version (CRC re-sealed so only the version check fires).
        let mut wrongver = good.clone();
        wrongver[8] = 9;
        let n = wrongver.len();
        let crc = format::crc32(&wrongver[..n - 4]);
        wrongver[n - 4..].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &wrongver).unwrap();
        assert!(store.load(&key).is_none());
        // Stale content hash: a file saved under a different key placed at
        // this key's path.
        let other_prog = counting_prog(0x4000);
        let other_key = region_key("count", &Cpu::new(other_prog.clone()), 1_500);
        let other_snap = capture_snapshots(&mut Cpu::new(other_prog), &[1_500], 0).unwrap();
        std::fs::write(&path, format::encode(&other_key, &other_snap[0])).unwrap();
        assert!(store.load(&key).is_none());
        // And the original bytes still load.
        std::fs::write(&path, &good).unwrap();
        assert!(store.load(&key).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
