//! Offline drop-in stub for the subset of the `proptest` API this
//! workspace uses.
//!
//! The build environment cannot reach crates.io, so the real `proptest`
//! cannot be resolved. This stub keeps the property tests compiling and
//! *running* as deterministic randomized tests: strategies generate
//! values from a per-test, per-case seeded generator and the `proptest!`
//! macro loops over [`ProptestConfig::cases`] cases.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its test name and case
//!   index (the seed is derived from both), which is enough to replay it
//!   deterministically, but no minimization is attempted.
//! * **Uniform `prop_oneof!`.** Weighted arms are not supported (unused
//!   in this workspace).
//! * `prop_assert!`/`prop_assert_eq!` panic like `assert!` instead of
//!   returning `Err` — equivalent observable behavior under the runner.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// Test RNG
// ---------------------------------------------------------------------

/// Deterministic generator handed to strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator for one `(test, case)` pair.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % n
    }
}

// ---------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------

/// A value generator. The stub's contract is just "produce one value
/// from the given RNG"; there is no shrink tree.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, retrying until `f` accepts one (bounded).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe generation, for boxing heterogeneous strategies.
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among boxed alternatives (the [`prop_oneof!`] result).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union over `alts` (must be non-empty).
    pub fn new(alts: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!alts.is_empty(), "prop_oneof! needs at least one arm");
        Union(alts)
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.0.len())
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u128) as usize;
        self.0[idx].generate(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// The [`Strategy::prop_filter`] adapter.
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.whence);
    }
}

/// A constant strategy.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (low, high) = (self.start as i128, self.end as i128);
                assert!(low < high, "empty range strategy");
                (low + rng.below((high - low) as u128) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (low, high) = (*self.start() as i128, *self.end() as i128);
                assert!(low <= high, "empty range strategy");
                (low + rng.below((high - low) as u128 + 1) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

/// Strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec<S::Value>` with length drawn from `len`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u128;
            let n = self.len.start + (rng.next_u64() as u128 % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Runner configuration (only `cases` is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Drives `f` over `cases` deterministic cases; on panic, reports the
/// test name and case index (which determine the seed) and re-raises.
pub fn run_cases<F: Fn(&mut TestRng)>(cases: u32, name: &str, f: F) {
    for case in 0..cases {
        let mut rng = TestRng::for_case(name, case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = result {
            eprintln!("proptest (stub): property '{name}' failed at case {case} of {cases}");
            std::panic::resume_unwind(payload);
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` looping over generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(cfg.cases, stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Uniform choice among strategy arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The conventional `use proptest::prelude::*` import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };

    /// Mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_case() {
        let mut a = crate::TestRng::for_case("x", 3);
        let mut b = crate::TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 0u8..6, b in -64i32..64, c in -2048i64..=2047) {
            prop_assert!(a < 6);
            prop_assert!((-64..64).contains(&b));
            prop_assert!((-2048..=2047).contains(&c));
        }

        /// Doc comments on properties are accepted.
        #[test]
        fn tuples_and_maps(v in (0u64..10, 0u64..10).prop_map(|(x, y)| x + y)) {
            prop_assert!(v < 19);
        }

        #[test]
        fn vectors_respect_length(v in prop::collection::vec(any::<bool>(), 1..64)) {
            prop_assert!(!v.is_empty() && v.len() < 64);
        }

        #[test]
        fn oneof_covers_arms(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_form_compiles(x in any::<u32>()) {
            let _ = x;
            prop_assert_eq!(1 + 1, 2);
        }
    }
}
