//! Offline drop-in stub for the subset of the `criterion` 0.5 API this
//! workspace uses.
//!
//! The build environment cannot reach crates.io, so the real `criterion`
//! cannot be resolved. This stub keeps `benches/engines.rs` compiling and
//! producing *useful* numbers: each benchmark is warmed up, then timed
//! with `std::time::Instant` over a fixed measurement window, reporting
//! mean ns/iter (and throughput in elements/s when configured). There is
//! no statistical analysis, outlier rejection, or HTML report.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (ignored: every batch re-runs
/// setup, which matches `PerIteration` — the only variant used here).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Setup runs before every routine invocation.
    PerIteration,
    /// Small batches (treated as `PerIteration`).
    SmallInput,
    /// Large batches (treated as `PerIteration`).
    LargeInput,
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per routine invocation.
    Elements(u64),
    /// Bytes processed per routine invocation.
    Bytes(u64),
}

/// Passed to benchmark closures; drives the timing loop.
#[derive(Debug)]
pub struct Bencher {
    /// Total measured time across timed iterations.
    elapsed: Duration,
    /// Timed iterations executed.
    iters: u64,
    /// Measurement window.
    window: Duration,
}

impl Bencher {
    fn new(window: Duration) -> Bencher {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            window,
        }
    }

    /// Times `routine` repeatedly until the measurement window closes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: a few invocations to populate caches/tables.
        for _ in 0..3 {
            black_box(routine());
        }
        let start = Instant::now();
        while start.elapsed() < self.window {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` on fresh `setup` output each invocation; only the
    /// routine is measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let start = Instant::now();
        while start.elapsed() < self.window {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }
}

/// An identity function that hides values from the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A named group of benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    window: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-invocation throughput annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stub's window is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.window = window;
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.window);
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            f64::NAN
        } else {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                format!("  ({:.1} Melem/s)", n as f64 * 1000.0 / mean_ns)
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                format!("  ({:.1} MB/s)", n as f64 * 1000.0 / mean_ns)
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<40} {:>12.1} ns/iter  [{} iters]{}",
            self.name, id, mean_ns, b.iters, rate
        );
        self
    }

    /// Ends the group (printing is immediate; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            window: Duration::from_millis(300),
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions into a single runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1));
        g.measurement_time(Duration::from_millis(5));
        let mut x = 0u64;
        g.bench_function("add", |b| {
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| 7u64, |v| v * 3, BatchSize::PerIteration)
        });
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn stub_runs_benchmarks() {
        benches();
    }
}
