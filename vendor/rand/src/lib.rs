//! Offline drop-in stub for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` crate cannot be resolved. This stub implements the handful of
//! items the workloads and tests actually touch — [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] and
//! [`Rng::gen_bool`] — on top of a xoshiro256++ generator, keeping the
//! same determinism-per-seed contract the workloads rely on.
//!
//! It intentionally does **not** match `rand`'s value streams: workloads
//! only require that a given seed always produces the same data, not any
//! particular data.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from their full value range.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types `gen_range` can sample. Sampling widens through `i128` so the
/// full signed and unsigned 64-bit ranges are handled uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Converts to the widening intermediate.
    fn to_i128(self) -> i128;
    /// Converts back from the widening intermediate.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_span<R: RngCore + ?Sized>(rng: &mut R, low: i128, span: u128) -> i128 {
    debug_assert!(span > 0);
    // Modulo draw; the bias is negligible for the spans used in tests and
    // irrelevant to determinism.
    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    low + (wide % span) as i128
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = (self.start.to_i128(), self.end.to_i128());
        assert!(low < high, "gen_range called with an empty range");
        T::from_i128(sample_span(rng, low, (high - low) as u128))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = (self.start().to_i128(), self.end().to_i128());
        assert!(low <= high, "gen_range called with an empty range");
        T::from_i128(sample_span(rng, low, (high - low) as u128 + 1))
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over `T`'s full range.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let s = r.gen_range(-64i32..64);
            assert!((-64..64).contains(&s));
            let inc = r.gen_range(-2048i32..=2047);
            assert!((-2048..=2047).contains(&inc));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "hits {hits}");
    }
}
