//! # phelps-repro
//!
//! Umbrella crate of the Phelps reproduction workspace: re-exports the
//! member crates so the workspace-level integration tests (`tests/`) and
//! runnable examples (`examples/`) have a single dependency root.
//!
//! * [`phelps`] — the paper's contribution (helper-thread machinery and
//!   the cycle-level simulator);
//! * [`phelps_isa`] — guest ISA, assembler, functional emulator;
//! * [`phelps_uarch`] — branch predictors, caches, core configuration;
//! * [`phelps_runahead`] — the Branch Runahead baseline;
//! * [`phelps_workloads`] — guest-assembly kernels and graph generators;
//! * [`phelps_ckpt`] — architectural checkpointing for instant SimPoint
//!   region starts.
//!
//! ```
//! use phelps_repro::prelude::*;
//!
//! let mut cfg = RunConfig::scaled(Mode::Baseline);
//! cfg.max_mt_insts = 20_000;
//! let result = simulate(suite::astar_small().cpu, &cfg);
//! assert!(result.stats.ipc() > 0.0);
//! ```

#![warn(missing_docs)]

pub use phelps;
pub use phelps_ckpt;
pub use phelps_isa;
pub use phelps_runahead;
pub use phelps_uarch;
pub use phelps_workloads;

/// One-stop imports for examples and tests.
pub mod prelude {
    pub use phelps::sim::{
        simulate, simulate_observed, simulate_warmed, Mode, PhelpsFeatures, RunConfig, SimResult,
    };
    pub use phelps_isa::{Asm, Cpu, Reg};
    pub use phelps_runahead::{simulate_runahead, BrVariant};
    pub use phelps_uarch::config::CoreConfig;
    pub use phelps_uarch::stats::speedup;
    pub use phelps_workloads::{suite, Workload};
}
